"""Confidence intervals on means and quantiles, numpy-only.

The mean CI is classical normal theory: ``mean +/- z * s / sqrt(n)``
with *s* the **sample** standard deviation (ddof=1) -- the estimator
whose square is unbiased for the population variance, and the one every
stopping-rule half-width in this codebase is defined against.  The
normal quantile ``z`` comes from Acklam's rational approximation of the
inverse normal CDF (relative error < 1.15e-9 over (0, 1)), so no scipy
import rides on the serving hot path.

Quantile CIs use exact order statistics: the number of samples below the
q-quantile is Binomial(n, q), so ``[x_(lo), x_(hi)]`` covers the true
quantile with the binomial probability mass between the two order
indices -- distribution-free, which matters because communication-time
distributions are exactly the multi-modal, heavy-tailed shapes (Figures
3-4 of the paper) where normal-theory intervals on a p99 would lie.
A seeded bootstrap is provided for the same job when the caller wants a
symmetric-coverage interval instead of the conservative exact one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ConfidenceInterval",
    "norm_ppf",
    "mean_ci",
    "quantile_ci",
    "bootstrap_quantile_ci",
]

# Acklam's inverse-normal-CDF coefficients (central + tail rational fits).
_A = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
      1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
_B = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
      6.680131188771972e+01, -1.328068155288572e+01)
_C = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
      -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
_D = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
      3.754408661907416e+00)
_P_LOW = 0.02425


def norm_ppf(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's approximation).

    Accurate to ~1e-9 relative error -- far below the Monte Carlo noise
    any CI built from it carries.  Raises on p outside (0, 1).
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p!r}")
    if p < _P_LOW:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]) / \
               ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0)
    if p > 1.0 - _P_LOW:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]) / \
                ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0)
    q = p - 0.5
    r = q * q
    return (((((_A[0] * r + _A[1]) * r + _A[2]) * r + _A[3]) * r + _A[4]) * r + _A[5]) * q / \
           (((((_B[0] * r + _B[1]) * r + _B[2]) * r + _B[3]) * r + _B[4]) * r + 1.0)


def z_for_level(level: float) -> float:
    """Two-sided normal quantile for a confidence *level* (e.g. 0.95 -> 1.96)."""
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be in (0, 1), got {level!r}")
    return norm_ppf(0.5 + level / 2.0)


@dataclass(frozen=True)
class ConfidenceInterval:
    """One two-sided interval around a point estimate."""

    estimate: float
    lo: float
    hi: float
    level: float
    n: int  #: samples the interval was computed from

    @property
    def half_width(self) -> float:
        return (self.hi - self.lo) / 2.0

    @property
    def relative_half_width(self) -> float:
        """Half-width relative to |estimate| (inf for a zero estimate
        with a non-degenerate interval)."""
        if self.estimate != 0.0:
            return self.half_width / abs(self.estimate)
        return 0.0 if self.half_width == 0.0 else float("inf")

    def overlaps(self, other: "ConfidenceInterval") -> bool:
        return self.lo <= other.hi and other.lo <= self.hi

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi


def mean_ci(samples, level: float = 0.95) -> ConfidenceInterval:
    """Normal-theory CI on the mean, sample std (ddof=1).

    With fewer than two samples the spread is inestimable: the interval
    degenerates to the point estimate (half-width 0 -- deliberately
    *not* NaN, so callers can test against targets without guards), and
    a sequential stopping rule must therefore never accept on n < 2.
    """
    arr = np.asarray(list(samples), dtype=float)
    n = int(arr.size)
    if n == 0:
        return ConfidenceInterval(0.0, 0.0, 0.0, level, 0)
    mean = float(np.mean(arr))
    if n < 2:
        return ConfidenceInterval(mean, mean, mean, level, n)
    half = z_for_level(level) * float(np.std(arr, ddof=1)) / math.sqrt(n)
    return ConfidenceInterval(mean, mean - half, mean + half, level, n)


def quantile_ci(samples, q: float, level: float = 0.95) -> ConfidenceInterval:
    """Distribution-free CI on the q-quantile from exact order statistics.

    The count of samples at or below the true q-quantile is
    Binomial(n, q); the interval takes the widest pair of order indices
    whose binomial mass is >= *level* when such a pair exists, clamped
    to the sample extremes otherwise (small n: the extremes may not
    reach nominal coverage, which is honest -- a p99 needs hundreds of
    samples, and the clamped interval says so by spanning the data).
    """
    if not 0.0 < q < 1.0:
        raise ValueError(f"q must be in (0, 1), got {q!r}")
    arr = np.sort(np.asarray(list(samples), dtype=float))
    n = int(arr.size)
    if n == 0:
        return ConfidenceInterval(0.0, 0.0, 0.0, level, 0)
    estimate = float(np.quantile(arr, q))
    if n < 2:
        return ConfidenceInterval(estimate, estimate, estimate, level, n)
    # Binomial(n, q) CDF, computed once; pmf[k] = C(n,k) q^k (1-q)^(n-k).
    # Work in logs to stay finite at the n this ever sees (<= ~1e5).
    k = np.arange(n + 1)
    log_pmf = (
        np.array([math.lgamma(n + 1) - math.lgamma(i + 1) - math.lgamma(n - i + 1) for i in k])
        + k * math.log(q)
        + (n - k) * math.log1p(-q)
    )
    pmf = np.exp(log_pmf)
    cdf = np.cumsum(pmf)
    alpha = (1.0 - level) / 2.0
    # lo: largest index with P(X < lo) <= alpha; hi: smallest index with
    # P(X <= hi) >= 1 - alpha.  Order statistics are 1-based; clamp.
    lo_idx = int(np.searchsorted(cdf, alpha, side="right"))
    hi_idx = int(np.searchsorted(cdf, 1.0 - alpha, side="left"))
    lo_idx = max(0, min(lo_idx, n - 1))
    hi_idx = max(0, min(hi_idx, n - 1))
    if lo_idx > hi_idx:
        lo_idx, hi_idx = hi_idx, lo_idx
    return ConfidenceInterval(
        estimate, float(arr[lo_idx]), float(arr[hi_idx]), level, n
    )


def bootstrap_quantile_ci(
    samples,
    q: float,
    level: float = 0.95,
    n_boot: int = 500,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI on the q-quantile, deterministically seeded.

    Resamples are drawn from ``default_rng(SeedSequence(seed))`` so the
    interval is a pure function of (samples, q, level, n_boot, seed) --
    the same reproducibility contract every other seeded path in this
    codebase keeps.
    """
    if not 0.0 < q < 1.0:
        raise ValueError(f"q must be in (0, 1), got {q!r}")
    if n_boot < 1:
        raise ValueError("n_boot must be >= 1")
    arr = np.asarray(list(samples), dtype=float)
    n = int(arr.size)
    if n == 0:
        return ConfidenceInterval(0.0, 0.0, 0.0, level, 0)
    estimate = float(np.quantile(arr, q))
    if n < 2:
        return ConfidenceInterval(estimate, estimate, estimate, level, n)
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    idx = rng.integers(0, n, size=(n_boot, n))
    stats = np.quantile(arr[idx], q, axis=1)
    alpha = (1.0 - level) / 2.0
    return ConfidenceInterval(
        estimate,
        float(np.quantile(stats, alpha)),
        float(np.quantile(stats, 1.0 - alpha)),
        level,
        n,
    )
