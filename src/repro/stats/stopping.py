"""Sequential stopping rule for Monte Carlo evaluation.

:class:`PrecisionTarget` is the contract between "how precise must this
answer be" and "how many runs does that cost".  The engine evaluates in
increments, checks the confidence-interval half-width on the mean after
each, and stops at the first total that meets the target (or at
``max_runs``).  Two properties make the rule safe to serve from:

* **Determinism** -- the increment schedule :func:`next_total` is a pure
  function of (target, vector_batch), so two adaptive evaluations of one
  request stop at the same total having drawn the same streams; combined
  with the engine's absolute run-index seeding (``run_offset``), an
  adaptive run stopping at N is bit-identical to a fixed ``runs=N`` run.
* **Chunk parity** -- batched-VM chunks are not prefix-stable (a chunk
  of 4 runs draws differently from the first 4 runs of a chunk of 64),
  so for vectorised groups every scheduled total is a multiple of the
  chunk size: the adaptive increments decompose into exactly the chunks
  a one-shot ``runs=N`` evaluation would dispatch.  The hard cap may
  fall off-multiple; its final partial chunk matches the fixed
  decomposition's final partial chunk, so parity still holds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .ci import z_for_level

__all__ = ["PrecisionTarget", "achieved_rse", "next_total"]


def _half_width(times, level: float) -> tuple[float, float, int]:
    """(mean, CI half-width, n) of *times* -- sample std, ddof=1."""
    arr = np.asarray(times, dtype=float)
    n = int(arr.size)
    if n < 2:
        return (float(arr[0]) if n else 0.0), float("inf"), n
    mean = float(np.mean(arr))
    half = z_for_level(level) * float(np.std(arr, ddof=1)) / math.sqrt(n)
    return mean, half, n


def achieved_rse(times, level: float = 0.95) -> float:
    """CI half-width relative to |mean| -- the quantity targets bound.

    ``inf`` when inestimable (n < 2, or a zero mean with spread).
    """
    mean, half, n = _half_width(times, level)
    if n < 2:
        return float("inf")
    if mean == 0.0:
        return 0.0 if half == 0.0 else float("inf")
    return half / abs(mean)


@dataclass(frozen=True)
class PrecisionTarget:
    """Stop when the mean's CI half-width meets every set bound.

    *rse* bounds the half-width relative to |mean|; *abs_halfwidth*
    bounds it absolutely (seconds).  At least one must be set; when both
    are, both must hold.  *min_runs* is the first total evaluated (the
    spread of fewer than 2 runs is inestimable, so >= 2); *max_runs*
    caps the spend -- the rule reports non-convergence rather than
    running forever on a heavy-tailed workload.
    """

    rse: float | None = None
    abs_halfwidth: float | None = None
    level: float = 0.95
    min_runs: int = 4
    max_runs: int = 256

    def __post_init__(self):
        if self.rse is None and self.abs_halfwidth is None:
            raise ValueError("set at least one of rse / abs_halfwidth")
        if self.rse is not None and not 0.0 < self.rse:
            raise ValueError(f"rse must be positive, got {self.rse!r}")
        if self.abs_halfwidth is not None and not 0.0 < self.abs_halfwidth:
            raise ValueError(
                f"abs_halfwidth must be positive, got {self.abs_halfwidth!r}"
            )
        if not 0.0 < self.level < 1.0:
            raise ValueError(f"level must be in (0, 1), got {self.level!r}")
        if self.min_runs < 2:
            raise ValueError("min_runs must be >= 2 (spread needs 2 samples)")
        if self.max_runs < self.min_runs:
            raise ValueError("max_runs must be >= min_runs")

    def to_doc(self) -> dict:
        """JSON-able identity of this target (cache-key component and
        response-record field); ``None`` bounds are omitted."""
        doc = {
            "level": self.level,
            "min_runs": self.min_runs,
            "max_runs": self.max_runs,
        }
        if self.rse is not None:
            doc["rse"] = self.rse
        if self.abs_halfwidth is not None:
            doc["abs_halfwidth"] = self.abs_halfwidth
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> "PrecisionTarget":
        return cls(
            rse=doc.get("rse"),
            abs_halfwidth=doc.get("abs_halfwidth"),
            level=float(doc.get("level", 0.95)),
            min_runs=int(doc.get("min_runs", 4)),
            max_runs=int(doc.get("max_runs", 256)),
        )

    def satisfied(self, times) -> bool:
        """Whether *times* already meets every set bound."""
        mean, half, n = _half_width(times, self.level)
        if n < max(2, self.min_runs):
            return False
        if self.abs_halfwidth is not None and half > self.abs_halfwidth:
            return False
        if self.rse is not None:
            if mean == 0.0:
                return half == 0.0
            if half / abs(mean) > self.rse:
                return False
        return True


def next_total(done: int, target: PrecisionTarget, batch: int | None = None) -> int:
    """The next cumulative run total of the doubling schedule.

    ``done=0`` starts at ``min_runs``; afterwards the total doubles
    (geometric growth keeps the number of refinement rounds -- each a
    pool dispatch -- logarithmic in the final spend).  With *batch* set
    (a vectorised group's chunk size), totals align **up** to chunk
    multiples so every increment is whole chunks; the ``max_runs`` cap
    wins over alignment (its final chunk may be partial -- see module
    docstring).  Returns ``done`` unchanged once the cap is reached.
    """
    if done >= target.max_runs:
        return done
    total = target.min_runs if done == 0 else done * 2
    if batch is not None:
        if batch < 1:
            raise ValueError("batch must be >= 1")
        total = ((total + batch - 1) // batch) * batch
    total = min(total, target.max_runs)
    # Alignment can only move totals up, and done is always a previous
    # total, so progress is guaranteed until the cap.
    return max(total, min(done + 1, target.max_runs))
