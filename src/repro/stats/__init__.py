"""Statistical rigour for benchmarking and prediction.

Hunold & Carpen-Amarie's *MPI Benchmarking Revisited* (PAPERS.md) argues
that run counts and summary statistics must be chosen by experimental
design, not guessed.  This package supplies the machinery both MPIBench
and the PEVPM prediction engine use to do that:

* :mod:`.ci` -- confidence intervals on the mean (normal theory) and on
  quantiles (exact order statistics, seeded bootstrap), numpy-only;
* :mod:`.stopping` -- :class:`~repro.stats.stopping.PrecisionTarget`,
  the sequential stopping rule that runs Monte Carlo in increments
  until the CI half-width meets a relative/absolute target, with a hard
  cap and a deterministic seed-stream continuation scheme;
* :mod:`.compare` -- nonparametric prediction-vs-measurement checks
  (two-sample Kolmogorov-Smirnov statistic + asymptotic p-value,
  CI-overlap verdicts).
"""

from .ci import ConfidenceInterval, mean_ci, norm_ppf, quantile_ci, bootstrap_quantile_ci
from .compare import ComparisonVerdict, ci_overlap, ks_2samp, ks_pvalue, verdict_for
from .stopping import PrecisionTarget, achieved_rse, next_total

__all__ = [
    "ConfidenceInterval",
    "mean_ci",
    "norm_ppf",
    "quantile_ci",
    "bootstrap_quantile_ci",
    "ComparisonVerdict",
    "ci_overlap",
    "ks_2samp",
    "ks_pvalue",
    "verdict_for",
    "PrecisionTarget",
    "achieved_rse",
    "next_total",
]
