"""Nonparametric comparison: does a prediction match a measurement?

The paper validates PEVPM by comparing predicted against measured
*means*; MPI Benchmarking Revisited's complaint is that a mean alone
cannot say whether two distributions actually agree.  This module gives
the comparison teeth:

* :func:`ks_2samp` -- two-sample Kolmogorov-Smirnov statistic plus the
  classical asymptotic p-value (Smirnov's series with the Stephens
  small-sample correction), numpy-only;
* :func:`ci_overlap` -- do the two means' confidence intervals overlap?
* :func:`verdict_for` -- fold both into one of three words a report can
  print: ``match`` (CIs overlap, KS cannot reject), ``shifted`` (shapes
  agree by KS but the mean CIs separate), ``different`` (KS rejects).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .ci import mean_ci

__all__ = [
    "ks_statistic",
    "ks_pvalue",
    "ks_2samp",
    "ci_overlap",
    "ComparisonVerdict",
    "verdict_for",
]


def ks_statistic(a, b) -> float:
    """Two-sample KS statistic: the largest gap between empirical CDFs."""
    xa = np.sort(np.asarray(list(a), dtype=float))
    xb = np.sort(np.asarray(list(b), dtype=float))
    if xa.size == 0 or xb.size == 0:
        raise ValueError("ks_statistic needs non-empty samples on both sides")
    grid = np.concatenate([xa, xb])
    cdf_a = np.searchsorted(xa, grid, side="right") / xa.size
    cdf_b = np.searchsorted(xb, grid, side="right") / xb.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


def ks_pvalue(d: float, n: int, m: int) -> float:
    """Asymptotic two-sample KS p-value for statistic *d* at sizes n, m.

    Uses Smirnov's alternating series ``2 * sum (-1)^(k-1) exp(-2 k^2
    lambda^2)`` with Stephens' finite-sample correction ``lambda = (
    sqrt(en) + 0.12 + 0.11/sqrt(en)) * d`` where ``en = n*m/(n+m)`` --
    the standard recipe (Numerical Recipes; scipy's ``mode='asymp'`` is
    the same series).  Clamped to [0, 1].
    """
    if n < 1 or m < 1:
        raise ValueError("sample sizes must be >= 1")
    if not 0.0 <= d <= 1.0:
        raise ValueError(f"KS statistic must be in [0, 1], got {d!r}")
    en = math.sqrt(n * m / (n + m))
    lam = (en + 0.12 + 0.11 / en) * d
    if lam <= 0.0:
        return 1.0
    total = 0.0
    for k in range(1, 101):
        term = 2.0 * (-1.0) ** (k - 1) * math.exp(-2.0 * k * k * lam * lam)
        total += term
        if abs(term) < 1e-10:
            break
    return float(min(1.0, max(0.0, total)))


def ks_2samp(a, b) -> tuple[float, float]:
    """(statistic, asymptotic p-value) for two raw sample sets."""
    xa = np.asarray(list(a), dtype=float)
    xb = np.asarray(list(b), dtype=float)
    d = ks_statistic(xa, xb)
    return d, ks_pvalue(d, xa.size, xb.size)


def ci_overlap(a, b, level: float = 0.95) -> bool:
    """Whether the two sample sets' mean CIs overlap."""
    return mean_ci(a, level).overlaps(mean_ci(b, level))


@dataclass(frozen=True)
class ComparisonVerdict:
    """One prediction-vs-measurement (or config-vs-config) judgement."""

    ks_stat: float
    ks_pvalue: float
    mean_a: float
    mean_b: float
    ci_overlap: bool
    verdict: str  #: "match" | "shifted" | "different"


def verdict_for(
    a, b, level: float = 0.95, alpha: float = 0.05
) -> ComparisonVerdict:
    """Compare two raw sample sets and name the outcome.

    ``match``: KS cannot reject shape equality at *alpha* and the mean
    CIs overlap.  ``shifted``: shapes indistinguishable but means
    separate (a systematic offset -- the PEVPM error mode the paper
    attributes to histogram granularity).  ``different``: KS rejects --
    the distributions disagree beyond a shift of the mean.
    """
    a = np.asarray(list(a), dtype=float)
    b = np.asarray(list(b), dtype=float)
    d = ks_statistic(a, b)
    p = ks_pvalue(d, a.size, b.size)
    overlap = ci_overlap(a, b, level)
    if p < alpha:
        verdict = "different"
    elif overlap:
        verdict = "match"
    else:
        verdict = "shifted"
    return ComparisonVerdict(
        ks_stat=d,
        ks_pvalue=p,
        mean_a=float(np.mean(a)),
        mean_b=float(np.mean(b)),
        ci_overlap=overlap,
        verdict=verdict,
    )
