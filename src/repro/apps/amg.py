"""AMG-style mixed workload: halo exchange interleaved with collectives.

Algebraic-multigrid solvers (AMG2023 and friends) alternate
neighbour-local smoothing with global reductions, and their profiles --
the Caliper/Benchpark characterisation in PAPERS.md -- show collective
time overtaking point-to-point as the grids coarsen.  This model
reproduces that communication *shape* with one V-cycle per iteration:

1. fine-grid smoothing: four-neighbour halo exchange
   (:func:`repro.apps.halo._exchange_block`) + local compute;
2. two 8-byte ``allreduce``\\ s (the CG smoother's dot products);
3. coarse-grid solve: a ring ``allgather`` of each rank's coarse block
   (everyone redundantly owns the coarse system -- the classic
   all-gather coarse strategy) + coarse compute;
4. convergence control: an 8-byte ``reduce`` of the residual norm to
   rank 0 and a 4-byte ``bcast`` of the verdict.

All four collective directives appear, so the model exercises every
lowering path; like :func:`repro.apps.halo.halo_model` it is pure
directive IR and predicts bit-identically on all three engines.
"""

from __future__ import annotations

from ..pevpm.directives import Block, Collective, Loop, Serial
from .halo import DOUBLE_BYTES, HALO_POINT_TIME, _exchange_block, halo_face_bytes

__all__ = ["FLAG_BYTES", "amg_model", "amg_serial_time"]

FLAG_BYTES = 4  #: the broadcast convergence verdict (one int)

#: coarse-grid work is a fixed small fraction of fine-grid work
_COARSE_FRACTION = 0.1


def amg_serial_time(nx: int, dims: int, iterations: int = 1) -> float:
    """One-processor V-cycle time (speedup baseline)."""
    fine = HALO_POINT_TIME * nx**dims
    return iterations * fine * (1.0 + _COARSE_FRACTION)


def amg_model(
    iterations: int = 4,
    nx: int = 32,
    halo: int = 1,
    dims: int = 2,
    px: int = 1,
    coarse_nx: int = 8,
    point_time: float = HALO_POINT_TIME,
) -> Block:
    """Directive model of an AMG-style V-cycle loop.

    *nx*/*halo*/*dims*/*px* shape the fine-grid exchange exactly as in
    :func:`repro.apps.halo.halo_model`; *coarse_nx* sizes the coarse
    block each rank contributes to the ``allgather``
    (``8 * coarse_nx**(dims-1)`` bytes).
    """
    if iterations < 0:
        raise ValueError("iterations must be >= 0")
    if coarse_nx < 1:
        raise ValueError("coarse_nx must be >= 1")
    if nx < 1:
        raise ValueError("nx must be >= 1")
    if halo < 1:
        raise ValueError("halo width must be >= 1")
    if dims not in (2, 3):
        raise ValueError("dims must be 2 or 3")
    if px < 1:
        raise ValueError("px must be >= 1")
    face = halo_face_bytes(nx, halo, dims)
    coarse_bytes = DOUBLE_BYTES * coarse_nx ** (dims - 1)
    fine_time = point_time * nx**dims
    body: list = list(_exchange_block(px, face))
    body.extend(
        [
            Serial(repr(fine_time)),
            Collective("allreduce", str(DOUBLE_BYTES)),
            Collective("allreduce", str(DOUBLE_BYTES)),
            Collective("allgather", str(coarse_bytes)),
            Serial(repr(fine_time * _COARSE_FRACTION)),
            Collective("reduce", str(DOUBLE_BYTES), root="0"),
            Collective("bcast", str(FLAG_BYTES), root="0"),
        ]
    )
    return Block([Loop(str(iterations), Block(body))])
