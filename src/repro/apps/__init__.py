"""Example parallel applications (Section 6).

One application per communication-pattern class the paper identifies:

* :mod:`repro.apps.jacobi`   -- regular-local (stencil exchange);
* :mod:`repro.apps.fft`      -- regular-global (all-to-all transpose);
* :mod:`repro.apps.taskfarm` -- irregular (dynamic master/worker);
* :mod:`repro.apps.halo`     -- 2D/3D halo exchange with configurable
  halo width and process grid (collective-aware stencil);
* :mod:`repro.apps.amg`      -- AMG-style mix of halo exchange with
  allreduce/allgather/reduce/bcast phases.

Each ships as a matched pair: an executable rank program for the simulated
MPI runtime (the "measured" side of Figure 6) and a PEVPM model (the
"predicted" side), sharing the same serial-time constants.
"""

from .amg import FLAG_BYTES, amg_model, amg_serial_time
from .fft import (
    FFT_POINT_TIME,
    distribute_input,
    fft_local_work,
    fft_model,
    fft_serial_time,
    fft_smpi,
    gather_output,
)
from .halo import (
    DOUBLE_BYTES,
    HALO_POINT_TIME,
    halo_face_bytes,
    halo_model,
    halo_serial_time,
)
from .jacobi import (
    JACOBI_ANNOTATED_SOURCE,
    JACOBI_XSIZE,
    jacobi_model,
    jacobi_serial_time,
    jacobi_smpi,
    parse_jacobi,
)
from .taskfarm import (
    RESULT_BYTES,
    STOP_BYTES,
    TASK_BYTES,
    make_tasks,
    taskfarm_model,
    taskfarm_serial_time,
    taskfarm_smpi,
)

__all__ = [
    "DOUBLE_BYTES",
    "FFT_POINT_TIME",
    "FLAG_BYTES",
    "HALO_POINT_TIME",
    "JACOBI_ANNOTATED_SOURCE",
    "JACOBI_XSIZE",
    "RESULT_BYTES",
    "STOP_BYTES",
    "TASK_BYTES",
    "amg_model",
    "amg_serial_time",
    "distribute_input",
    "fft_local_work",
    "fft_model",
    "fft_serial_time",
    "fft_smpi",
    "gather_output",
    "halo_face_bytes",
    "halo_model",
    "halo_serial_time",
    "jacobi_model",
    "jacobi_serial_time",
    "jacobi_smpi",
    "make_tasks",
    "parse_jacobi",
    "taskfarm_model",
    "taskfarm_serial_time",
    "taskfarm_smpi",
]
