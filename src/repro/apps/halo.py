"""Halo-exchange stencil: the collectives-era regular-local workload.

A dims-dimensional structured grid is decomposed over a ``px`` x
``numprocs // px`` process grid (``px = 1`` gives the classic 1-D slab
decomposition; ``px > 1`` a 2-D process grid with four-neighbour
exchange).  Each iteration every rank

1. posts non-blocking halo sends to its existing east/west/north/south
   neighbours (face size ``8 * halo * nx**(dims-1)`` bytes -- the halo
   *width* scales the wire bytes, the paper's size-conditioned
   distributions do the rest),
2. receives the mirrored faces,
3. smooths its local block (``point_time * nx**dims`` seconds), and
4. optionally joins a global residual ``allreduce`` every
   ``reduce_every`` iterations -- the convergence check that makes real
   stencil codes collective-bound at scale (AMG2023/Kripke/Laghos-style
   mixes; see DESIGN.md section 12).

The model is pure directive IR, so the scalar, batched, and compiled
engines all predict it bit-identically, and the lowered collective
schedule is exactly :mod:`repro.smpi.collectives`' binomial/reduce+bcast
shape.

Neighbour guards are symbolic in ``procnum``/``numprocs``: the mirrored
send/recv conditions are exact complements (a rank receives from the
east iff its east neighbour sent west), so the model stays deadlock-free
for *any* nprocs, including ragged grids where ``px`` does not divide
``numprocs``.
"""

from __future__ import annotations

from ..pevpm.directives import Block, Collective, Loop, Message, Runon, Serial

__all__ = [
    "DOUBLE_BYTES",
    "HALO_POINT_TIME",
    "halo_model",
    "halo_face_bytes",
    "halo_serial_time",
]

DOUBLE_BYTES = 8  #: one grid cell on the wire

#: per-cell, per-iteration smoothing cost on the modelled 500 MHz PIII
#: (seconds) -- a 5/7-point update's handful of flops
HALO_POINT_TIME = 25e-9


def _validate(iterations: int, nx: int, halo: int, dims: int, px: int) -> None:
    if iterations < 0:
        raise ValueError("iterations must be >= 0")
    if nx < 1:
        raise ValueError("nx must be >= 1")
    if halo < 1:
        raise ValueError("halo width must be >= 1")
    if dims not in (2, 3):
        raise ValueError("dims must be 2 or 3")
    if px < 1:
        raise ValueError("px must be >= 1")


def halo_face_bytes(nx: int, halo: int, dims: int) -> int:
    """Bytes of one halo face: ``halo`` layers of an ``nx**(dims-1)``
    cell cross-section, in doubles."""
    return DOUBLE_BYTES * halo * nx ** (dims - 1)


def halo_serial_time(nx: int, dims: int, iterations: int = 1) -> float:
    """One-processor smoothing time (speedup baseline)."""
    return HALO_POINT_TIME * nx**dims * iterations


def _exchange_block(px: int, face: int) -> list:
    """The four-neighbour halo exchange as guarded directives.

    East/west neighbours are ``procnum +- 1`` within a row of the
    ``px``-wide process grid, north/south are ``procnum +- px``.  All
    sends are posted before any receive (PEVPM sends are non-blocking,
    so this is the Isend/Irecv-then-wait idiom with no ordering hazard).
    Every guard pair is a mirror image: ``has_east(p)`` iff
    ``has_west(p + 1)``, ``has_north(p)`` iff ``has_south(p + px)``, so
    each posted receive has exactly one matching send.
    """
    has_east = f"procnum % {px} < {px - 1} and procnum + 1 < numprocs"
    has_west = f"procnum % {px} > 0"
    has_north = f"procnum + {px} < numprocs"
    has_south = f"procnum >= {px}"
    size = str(face)

    def _on(cond: str, *directives) -> Runon:
        return Runon([cond], [Block(list(directives))])

    return [
        # -- post all sends --------------------------------------------------
        _on(has_east, Message("MPI_Isend", size, "procnum", "procnum + 1")),
        _on(has_west, Message("MPI_Isend", size, "procnum", "procnum - 1")),
        _on(has_north, Message("MPI_Isend", size, "procnum", f"procnum + {px}")),
        _on(has_south, Message("MPI_Isend", size, "procnum", f"procnum - {px}")),
        # -- then complete the mirrored receives -----------------------------
        _on(has_west, Message("MPI_Recv", size, "procnum - 1", "procnum")),
        _on(has_east, Message("MPI_Recv", size, "procnum + 1", "procnum")),
        _on(has_south, Message("MPI_Recv", size, f"procnum - {px}", "procnum")),
        _on(has_north, Message("MPI_Recv", size, f"procnum + {px}", "procnum")),
    ]


def halo_model(
    iterations: int = 10,
    nx: int = 64,
    halo: int = 1,
    dims: int = 2,
    px: int = 1,
    reduce_every: int = 0,
    point_time: float = HALO_POINT_TIME,
) -> Block:
    """Directive model of a dims-D halo-exchange stencil.

    *halo* is the exchange depth in grid layers (wider halos trade
    bigger messages for fewer iterations in communication-avoiding
    schemes -- here it scales the face bytes).  *px* is the process-grid
    width (1 = slab decomposition).  *reduce_every* > 0 adds a global
    8-byte residual ``allreduce`` every that many iterations.
    """
    _validate(iterations, nx, halo, dims, px)
    if reduce_every < 0:
        raise ValueError("reduce_every must be >= 0")
    face = halo_face_bytes(nx, halo, dims)
    body: list = list(_exchange_block(px, face))
    body.append(Serial(repr(point_time * nx**dims)))
    if reduce_every:
        check = Collective("allreduce", str(DOUBLE_BYTES))
        if reduce_every == 1:
            body.append(check)
        else:
            body.append(
                Runon(
                    [f"iteration % {reduce_every} == {reduce_every - 1}"],
                    [Block([check])],
                )
            )
    return Block([Loop(str(iterations), Block(body))])
