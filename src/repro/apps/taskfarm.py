"""Bag-of-tasks (task farm): the paper's irregular example application.

Section 6: "...and a bag of tasks (or task farm) as an example of a
program with irregular communication."  A master (rank 0) owns a bag of
tasks with heterogeneous costs; workers request work, compute, and return
results until the bag drains.  Which worker gets which task depends on
runtime timing -- the *non-deterministic execution* PEVPM's decision-point
machinery exists to model: the master's wildcard receive is a decision
point whose outcome (which worker reported first) steers the rest of the
run.

:func:`taskfarm_smpi` is the executable version; :func:`taskfarm_model`
the PEVPM model, using the machine's ``(source, size) = yield ctx.recv()``
resume values to mirror the master's dynamic dispatch exactly.  Both take
the same per-task cost list so predictions and measurements describe the
same workload.
"""

from __future__ import annotations

import numpy as np

from ..pevpm.machine import ANY_SOURCE, ProcContext
from ..smpi.status import ANY_SOURCE as MPI_ANY_SOURCE

__all__ = [
    "make_tasks",
    "taskfarm_serial_time",
    "taskfarm_smpi",
    "taskfarm_model",
    "TASK_BYTES",
    "RESULT_BYTES",
    "STOP_BYTES",
]

TASK_BYTES = 2048  #: task-description message size
RESULT_BYTES = 512  #: result message size
STOP_BYTES = 8  #: termination message size (distinguishes stop from task)

TAG_READY = 1
TAG_TASK = 2
TAG_STOP = 3


def make_tasks(n_tasks: int, mean: float = 5e-3, cv: float = 0.5, seed: int = 0) -> list[float]:
    """Generate heterogeneous task costs (seconds): a gamma distribution
    with the given mean and coefficient of variation, fixed by *seed* so
    measurement and model describe the same bag."""
    if n_tasks < 1:
        raise ValueError("need at least one task")
    if mean <= 0 or cv <= 0:
        raise ValueError("mean and cv must be positive")
    rng = np.random.default_rng(seed)
    shape = 1.0 / cv**2
    scale = mean / shape
    return [float(t) for t in rng.gamma(shape, scale, size=n_tasks)]


def taskfarm_serial_time(tasks: list[float]) -> float:
    """One-processor time: the whole bag, no messaging."""
    return float(sum(tasks))


def taskfarm_smpi(comm, tasks: list[float]):
    """Executable task farm for the simulated MPI runtime.

    Rank 0 is the master and does no task work (as in the classic
    formulation).  Returns (tasks_done, completion_time) per rank.
    """
    if comm.size < 2:
        raise ValueError("task farm needs a master and at least one worker")
    me = comm.rank

    if me == 0:
        next_task = 0
        active = comm.size - 1
        handed = 0
        while active:
            _payload, st = yield from comm.recv(source=MPI_ANY_SOURCE)
            worker = st.source
            if next_task < len(tasks):
                yield from comm.send(
                    TASK_BYTES, dest=worker, tag=TAG_TASK, payload=tasks[next_task]
                )
                next_task += 1
                handed += 1
            else:
                yield from comm.send(STOP_BYTES, dest=worker, tag=TAG_STOP)
                active -= 1
        return handed, comm.true_time()

    done = 0
    # Announce readiness, then serve until told to stop.
    yield from comm.send(RESULT_BYTES, dest=0, tag=TAG_READY)
    while True:
        payload, st = yield from comm.recv(source=0)
        if st.tag == TAG_STOP:
            break
        yield from comm.compute(payload)
        done += 1
        yield from comm.send(RESULT_BYTES, dest=0, tag=TAG_READY)
    return done, comm.true_time()


def taskfarm_model(tasks: list[float]):
    """PEVPM model of the task farm, mirroring the dynamic dispatch.

    The master reacts to whichever worker's message *arrives* first in the
    virtual machine -- the same decision rule as the real program; the
    assigned task's cost rides on the model message as a payload, and the
    stop message is distinguished by its size, exactly as the runtime
    version distinguishes it by tag.
    """
    task_list = list(tasks)

    def program(ctx: ProcContext):
        P = ctx.numprocs
        if P < 2:
            raise ValueError("task farm needs a master and at least one worker")
        if ctx.procnum == 0:
            next_task = 0
            active = P - 1
            while active:
                info = yield ctx.recv(ANY_SOURCE, label="worker-report")
                if next_task < len(task_list):
                    yield ctx.send(
                        info.src, TASK_BYTES, label="assign",
                        payload=task_list[next_task],
                    )
                    next_task += 1
                else:
                    yield ctx.send(info.src, STOP_BYTES, label="stop")
                    active -= 1
            return

        yield ctx.send(0, RESULT_BYTES, label="ready")
        while True:
            info = yield ctx.recv(0, label="await-task")
            if info.size == STOP_BYTES:
                break
            yield ctx.serial(info.payload, label="task")
            yield ctx.send(0, RESULT_BYTES, label="result")

    return program
