"""Jacobi Iteration: the paper's Section 6 case study.

"Jacobi Iteration is a common parallel computing example because it is
simple to explain yet has the same basic computation-communication pattern
as all parallel algorithms with regular and local communication."

Three forms are provided, kept deliberately in sync:

* :data:`JACOBI_ANNOTATED_SOURCE` -- the annotated C skeleton of the
  paper's Figure 5 (with explicit edge guards on the even branch), parsed
  by :func:`repro.pevpm.parser.parse_annotations` into the PEVPM model;
* :func:`jacobi_model` -- the same model built programmatically;
* :func:`jacobi_smpi` -- an executable rank program for the simulated MPI
  runtime (the "actually executing the Jacobi Iteration code on Perseus"
  side of Figure 6).

The grid is 256 x 256 single-precision, decomposed 1-D by rows; each
iteration exchanges one ``xsize * sizeof(float)`` = 1024-byte edge with
each neighbour and then computes, with the serial whole-grid sweep time
``spec.jacobi_serial_time`` (the paper's measured 3.24 time units per
iteration) divided by ``numprocs``.
"""

from __future__ import annotations

from ..pevpm.directives import Block, Loop, Message, Runon, Serial
from ..pevpm.parser import parse_annotations

__all__ = [
    "JACOBI_ANNOTATED_SOURCE",
    "jacobi_model",
    "parse_jacobi",
    "jacobi_smpi",
    "jacobi_serial_time",
    "JACOBI_XSIZE",
]

#: grid edge length of the paper's problem (fits in cache at 1-128 procs)
JACOBI_XSIZE = 256


def jacobi_serial_time(spec, iterations: int) -> float:
    """Total one-process time for *iterations* sweeps (the speedup base)."""
    return spec.jacobi_serial_time * iterations


#: Figure 5's annotated skeleton.  The even branch of the paper's listing
#: sends to procnum+1 unguarded (valid only for even process counts); the
#: ``c1 = procnum != numprocs-1`` guards here make the model correct for
#: any count, matching the odd branch's symmetric guards.
JACOBI_ANNOTATED_SOURCE = """
int i, j, k, procnum, numprocs; int iterations = 1000;
int xsize = 256; int ysize = 256/numprocs+2;
float grid[size][size]; float griddash[size][size];
MPI_Comm_rank(MPI_COMM_WORLD, &procnum);
MPI_Comm_size(MPI_COMM_WORLD, &numprocs);
// PEVPM Loop iterations = iterations
// PEVPM {
  for (i = 0; i < iterations; i++){
// PEVPM Runon c1 = procnum%2 == 0
// PEVPM &     c2 = procnum%2 != 0
// PEVPM {
    if (procnum%2 == 0){
// PEVPM Runon c1 = procnum != 0
// PEVPM {
      if (procnum != 0){
// PEVPM Message type = MPI_Send
// PEVPM &       size = xsize*sizeof(float)
// PEVPM &       from = procnum
// PEVPM &       to = procnum-1
        MPI_Send(grid[1], xsize, ..., procnum-1, ...);
      }
// PEVPM }
// PEVPM Runon c1 = procnum != numprocs-1
// PEVPM {
      if (procnum != (numprocs-1)){
// PEVPM Message type = MPI_Send
// PEVPM &       size = xsize*sizeof(float)
// PEVPM &       from = procnum
// PEVPM &       to = procnum+1
        MPI_Send(grid[ysize-2], xsize, ..., procnum+1, ...);
// PEVPM Message type = MPI_Recv
// PEVPM &       size = xsize*sizeof(float)
// PEVPM &       from = procnum+1
// PEVPM &       to = procnum
        MPI_Recv(grid[ysize-1], xsize, ..., procnum+1, ...);
      }
// PEVPM }
// PEVPM Runon c1 = procnum != 0
// PEVPM {
      if (procnum != 0){
// PEVPM Message type = MPI_Recv
// PEVPM &       size = xsize*sizeof(float)
// PEVPM &       from = procnum-1
// PEVPM &       to = procnum
        MPI_Recv(grid[0], xsize, ..., procnum-1, ...);
      }
// PEVPM }
    }
// PEVPM }
// PEVPM {
    else{
// PEVPM Runon c1 = procnum != numprocs-1
// PEVPM {
      if (procnum != (numprocs-1)){
// PEVPM Message type = MPI_Recv
// PEVPM &       size = xsize*sizeof(float)
// PEVPM &       from = procnum+1
// PEVPM &       to = procnum
        MPI_Recv(grid[ysize-1], xsize, ..., procnum+1, ...);
      }
// PEVPM }
// PEVPM Message type = MPI_Recv
// PEVPM &       size = xsize*sizeof(float)
// PEVPM &       from = procnum-1
// PEVPM &       to = procnum
      MPI_Recv(grid[0], xsize, ..., procnum-1, ...);
// PEVPM Message type = MPI_Send
// PEVPM &       size = xsize*sizeof(float)
// PEVPM &       from = procnum
// PEVPM &       to = procnum-1
      MPI_Send(grid[1], xsize, ..., procnum-1, ...);
// PEVPM Runon c1 = procnum != numprocs-1
// PEVPM {
      if (procnum != (numprocs-1)){
// PEVPM Message type = MPI_Send
// PEVPM &       size = xsize*sizeof(float)
// PEVPM &       from = procnum
// PEVPM &       to = procnum+1
        MPI_Send(grid[ysize-2], xsize, ..., procnum+1, ...);
      }
// PEVPM }
    }
// PEVPM }
// PEVPM Serial on perseus time = serial_time/numprocs
    for(j = 1; j < ysize-1; j++){
      for(k = 1; k < xsize-1; k++){
        griddash[j][k]=0.25*
          (grid[j][k-1]+grid[j-1][k]+grid[j][k+1]+grid[j+1][k]);
      }
    }
    swap_ptr(grid, griddash);
  }
// PEVPM }
"""


def parse_jacobi() -> Block:
    """Parse the annotated Figure 5 source into a PEVPM model tree.

    Evaluate it with params ``{"iterations": ..., "xsize": 256,
    "serial_time": spec.jacobi_serial_time}``.
    """
    return parse_annotations(JACOBI_ANNOTATED_SOURCE)


def jacobi_model(iterations: int = 1000, xsize: int = JACOBI_XSIZE) -> Block:
    """Build the Figure 5 model programmatically (no parsing involved).

    The ``serial_time`` parameter stays symbolic so one model evaluates on
    any machine; bind it via the VirtualMachine/predict ``params``.
    """
    size_expr = f"{xsize}*sizeof(float)"

    def send(to: str) -> Message:
        return Message("MPI_Send", size_expr, "procnum", to)

    def recv(frm: str) -> Message:
        return Message("MPI_Recv", size_expr, frm, "procnum")

    even = Block(
        [
            Runon(["procnum != 0"], [Block([send("procnum-1")])]),
            Runon(
                ["procnum != numprocs-1"],
                [Block([send("procnum+1"), recv("procnum+1")])],
            ),
            Runon(["procnum != 0"], [Block([recv("procnum-1")])]),
        ]
    )
    odd = Block(
        [
            Runon(["procnum != numprocs-1"], [Block([recv("procnum+1")])]),
            recv("procnum-1"),
            send("procnum-1"),
            Runon(["procnum != numprocs-1"], [Block([send("procnum+1")])]),
        ]
    )
    body = Block(
        [
            Runon(["procnum%2 == 0", "procnum%2 != 0"], [even, odd]),
            Serial("serial_time/numprocs", machine="perseus"),
        ]
    )
    return Block([Loop(str(iterations), body=Block([body]))])


def jacobi_smpi(comm, iterations: int = 1000, xsize: int = JACOBI_XSIZE):
    """Executable Jacobi rank program for the simulated MPI runtime.

    Mirrors the Figure 5 skeleton operation-for-operation: even processes
    send-then-receive, odd processes receive-then-send, then everyone
    computes its share of the sweep.  Returns this rank's completion time.
    """
    me = comm.rank
    n = comm.size
    msg = xsize * 4  # xsize * sizeof(float)
    serial = comm._rt.spec.jacobi_serial_time / n
    tag = 7

    for _ in range(iterations):
        if me % 2 == 0:
            if me != 0:
                yield from comm.send(msg, dest=me - 1, tag=tag)
            if me != n - 1:
                yield from comm.send(msg, dest=me + 1, tag=tag)
                yield from comm.recv(source=me + 1, tag=tag)
            if me != 0:
                yield from comm.recv(source=me - 1, tag=tag)
        else:
            if me != n - 1:
                yield from comm.recv(source=me + 1, tag=tag)
            yield from comm.recv(source=me - 1, tag=tag)
            yield from comm.send(msg, dest=me - 1, tag=tag)
            if me != n - 1:
                yield from comm.send(msg, dest=me + 1, tag=tag)
        yield from comm.compute(serial)
    return comm.true_time()
