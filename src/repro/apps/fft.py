"""Parallel 1-D FFT: the paper's regular-global example application.

Section 6: "We have also tested the PEVPM using ... a Fast Fourier
Transform as an example of a program with regular and global
communication."  This module implements the classic *transpose* (four-step
Cooley-Tukey) parallel FFT:

with N = P * M points cyclically distributed (rank p holds ``x[p::P]``):

1. each rank computes a local FFT of length M over its slice;
2. each rank multiplies by the twiddle factors ``exp(-2*pi*i*p*k2/N)``;
3. an all-to-all transpose redistributes columns: rank p ends up with the
   k2 block ``[p*M/P, (p+1)*M/P)`` of all P partial results;
4. each rank computes P-point FFTs down its columns, yielding the output
   entries ``X[M*k1 + k2]`` for its k2 block.

The :func:`fft_smpi` program really performs the arithmetic (NumPy) and
moves the blocks through the simulated MPI alltoall, so correctness is
testable against ``numpy.fft.fft``; :func:`fft_model` is the matching
PEVPM model with the same serial-time constants and the same P-1-round
pairwise exchange structure as the runtime's alltoall.
"""

from __future__ import annotations

import numpy as np

from ..pevpm.machine import ProcContext

__all__ = [
    "FFT_POINT_TIME",
    "fft_serial_time",
    "fft_local_work",
    "fft_smpi",
    "fft_model",
    "distribute_input",
    "gather_output",
]

#: Empirical per-point, per-FFT-level compute cost on the modelled 500 MHz
#: PIII (seconds) -- the FFT analogue of Jacobi's measured 3.24 constant.
FFT_POINT_TIME = 60e-9

COMPLEX_BYTES = 16  #: one complex128 on the wire


def _require_pow2(value: int, what: str) -> None:
    if value < 1 or value & (value - 1):
        raise ValueError(f"{what} must be a power of two, got {value}")


def fft_local_work(n: int, length: int) -> float:
    """Model of local FFT cost: ``FFT_POINT_TIME * n * log2(length)`` for
    *n* points transformed in FFTs of the given *length*."""
    if n < 1 or length < 1:
        raise ValueError("n and length must be >= 1")
    levels = max(1.0, np.log2(length))
    return FFT_POINT_TIME * n * levels


def fft_serial_time(n_points: int) -> float:
    """One-processor FFT time for the speedup baseline."""
    return fft_local_work(n_points, n_points)


def distribute_input(x: np.ndarray, nprocs: int) -> list[np.ndarray]:
    """Cyclic distribution: rank p gets ``x[p::nprocs]``."""
    return [np.asarray(x[p::nprocs], dtype=complex) for p in range(nprocs)]


def gather_output(chunks: list[np.ndarray]) -> np.ndarray:
    """Reassemble rank outputs (k2-blocks of X in k = M*k1 + k2 order)."""
    P = len(chunks)
    # chunks[p] is an array of shape (block, P): X[M*k1 + k2] for k2 in
    # rank p's block, k1 in [0, P).  Flatten back to natural k order.
    N = sum(c.size for c in chunks)
    M = N // P
    block = M // P
    X = np.empty(N, dtype=complex)
    for p, chunk in enumerate(chunks):
        cols = chunk.reshape(block, P)  # [k2 - p*block, k1]
        for j in range(block):
            k2 = p * block + j
            for k1 in range(P):
                X[M * k1 + k2] = cols[j, k1]
    return X


def fft_smpi(comm, x_chunk: np.ndarray, n_points: int):
    """Rank program: transform this rank's cyclic slice of the input.

    Returns this rank's output block (shape ``(M/P, P)`` flattened), plus
    the completion time.  Compute phases are charged to the virtual CPU
    with :func:`fft_local_work`; the transpose goes through the simulated
    alltoall.
    """
    P = comm.size
    p = comm.rank
    _require_pow2(P, "process count")
    _require_pow2(n_points, "n_points")
    if n_points % (P * P):
        raise ValueError("n_points must be divisible by P^2 for the transpose")
    M = n_points // P
    block = M // P

    data = np.asarray(x_chunk, dtype=complex)
    if data.shape != (M,):
        raise ValueError(f"rank {p} expected {M} points, got {data.shape}")

    # Step 1: local FFT of length M over the cyclic slice.
    yield from comm.compute(fft_local_work(M, M))
    f1 = np.fft.fft(data)

    # Step 2: twiddle factors exp(-2 pi i p k2 / N).
    yield from comm.compute(FFT_POINT_TIME * M)
    k2 = np.arange(M)
    g = f1 * np.exp(-2j * np.pi * p * k2 / n_points)

    # Step 3: all-to-all transpose.  Rank q gets our values for its k2
    # block [q*block, (q+1)*block).
    payloads = [g[q * block : (q + 1) * block] for q in range(P)]
    received = yield from comm.alltoall(block * COMPLEX_BYTES, payloads=payloads)

    # Step 4: P-point FFTs down the columns of our k2 block.
    yield from comm.compute(fft_local_work(block * P, P))
    matrix = np.vstack(received)  # [n1, j] -- contribution of rank n1
    out = np.fft.fft(matrix, axis=0)  # over n1 -> k1
    # out[k1, j] = X[M*k1 + (p*block + j)]
    result = out.T.reshape(-1)  # [j, k1] flattened
    return result, comm.true_time()


def fft_model(n_points: int):
    """PEVPM model factory mirroring :func:`fft_smpi`'s time structure.

    Returns a program callable for
    :class:`~repro.pevpm.machine.VirtualMachine` /
    :func:`~repro.pevpm.predict.predict`.
    """
    _require_pow2(n_points, "n_points")

    def program(ctx: ProcContext):
        P = ctx.numprocs
        if n_points % (P * P):
            raise ValueError("n_points must be divisible by P^2")
        M = n_points // P
        block = M // P
        size = block * COMPLEX_BYTES

        yield ctx.serial(fft_local_work(M, M), label="fft-step1")
        yield ctx.serial(FFT_POINT_TIME * M, label="twiddle")
        # The runtime's alltoall: P-1 shifted pairwise exchanges.
        for step in range(1, P):
            dst = (ctx.procnum + step) % P
            src = (ctx.procnum - step) % P
            yield ctx.send(dst, size, label="transpose-send")
            yield ctx.recv(src, label="transpose-recv")
        yield ctx.serial(fft_local_work(block * P, P), label="fft-step4")

    return program
