"""Command-line interface: ``repro`` (or ``python -m repro``).

Subcommands:

* ``repro info``      -- describe the simulated cluster;
* ``repro bench``     -- run an MPIBench campaign, print the Figure 1/2
  style table, optionally save the distribution database as JSON;
* ``repro pdf``       -- print distribution tables/ASCII plots for one
  configuration (the Figure 3/4 views);
* ``repro predict``   -- build/load a database and predict an example
  application's run time with PEVPM, comparing timing modes.
"""

from __future__ import annotations

import argparse
import sys

from . import __version__
from ._tables import format_table, format_time
from .apps.jacobi import jacobi_serial_time, jacobi_smpi, parse_jacobi
from .mpibench import BenchSettings, DistributionDB, MPIBench
from .mpibench.report import average_times_table, pdf_plots, tail_report
from .pevpm import compare_timing_modes
from .simnet import perseus
from .smpi import run_program

__all__ = ["main", "build_parser"]

DEFAULT_SIZES = [0, 256, 1024, 4096, 16384, 65536]


def _parse_config(text: str) -> tuple[int, int]:
    """Parse an ``NxP`` configuration label like ``64x2``."""
    try:
        nodes, ppn = text.lower().split("x")
        return int(nodes), int(ppn)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"config must look like '8x1' or '64x2', got {text!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MPIBench + PEVPM reproduction (Grove & Coddington)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="describe the simulated cluster")
    p_info.add_argument("--nodes", type=int, default=116)

    p_bench = sub.add_parser("bench", help="run an MPIBench campaign")
    p_bench.add_argument(
        "--config", type=_parse_config, action="append", dest="configs",
        help="NxP configuration, repeatable (default: 2x1 8x1 32x1)",
    )
    p_bench.add_argument("--sizes", type=int, nargs="+", default=DEFAULT_SIZES)
    p_bench.add_argument("--reps", type=int, default=60)
    p_bench.add_argument("--seed", type=int, default=1)
    p_bench.add_argument("--save", metavar="FILE", help="save DB as JSON")
    p_bench.add_argument(
        "--export", metavar="FILE.dat",
        help="also write the mean-time curves as a gnuplot .dat series",
    )

    p_pdf = sub.add_parser("pdf", help="show timing distributions (Fig 3/4)")
    p_pdf.add_argument("--config", type=_parse_config, default=(64, 1))
    p_pdf.add_argument("--sizes", type=int, nargs="+", default=[0, 1024, 16384])
    p_pdf.add_argument("--reps", type=int, default=60)
    p_pdf.add_argument("--seed", type=int, default=1)

    p_pred = sub.add_parser("predict", help="PEVPM prediction of Jacobi (Fig 6)")
    p_pred.add_argument("--db", metavar="FILE", help="load a saved DistributionDB")
    p_pred.add_argument("--nprocs", type=int, default=16)
    p_pred.add_argument("--ppn", type=int, default=1)
    p_pred.add_argument("--iterations", type=int, default=200)
    p_pred.add_argument("--runs", type=int, default=5)
    p_pred.add_argument("--seed", type=int, default=1)
    p_pred.add_argument(
        "--measure", action="store_true",
        help="also run the real (simulated) Jacobi for comparison",
    )
    p_pred.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for the Monte Carlo runs "
             "(default: one per host core; results are identical either way)",
    )
    p_pred.add_argument(
        "--cache-dir", metavar="DIR",
        help="reuse finished predictions from this on-disk cache",
    )
    p_pred.add_argument(
        "--vector-runs", action="store_true",
        help="evaluate Monte Carlo runs in lockstep batches on the "
             "vectorised engine (fastest; statistically equivalent to "
             "per-run evaluation, and composes with --workers)",
    )
    return parser


def cmd_info(args) -> int:
    spec = perseus(args.nodes)
    rows = [
        ["name", spec.name],
        ["nodes", spec.n_nodes],
        ["processors/node", spec.processors_per_node],
        ["link bandwidth", f"{spec.link_bandwidth * 8 / 1e6:.0f} Mbit/s"],
        ["switches", f"{spec.n_switches} x {spec.ports_per_switch} ports"],
        ["backplane/link", f"{spec.backplane_bandwidth * 8 / 1e9:.1f} Gbit/s"],
        ["eager threshold", f"{spec.eager_threshold} B"],
        ["TCP RTO", format_time(spec.tcp.rto)],
    ]
    print(format_table(["parameter", "value"], rows, title="Simulated cluster"))
    return 0


def cmd_bench(args) -> int:
    configs = args.configs or [(2, 1), (8, 1), (32, 1)]
    spec = perseus()
    bench = MPIBench(spec, seed=args.seed, settings=BenchSettings(reps=args.reps))
    db = bench.sweep_isend(configs, sizes=args.sizes)
    print(average_times_table(db, "isend", args.sizes, configs))
    if args.save:
        db.save(args.save)
        print(f"\nsaved distribution database to {args.save}")
    if args.export:
        from .mpibench import export_series

        out = export_series(db, "isend", args.export)
        print(f"exported gnuplot series to {out}")
    return 0


def cmd_pdf(args) -> int:
    nodes, ppn = args.config
    spec = perseus()
    bench = MPIBench(spec, seed=args.seed, settings=BenchSettings(reps=args.reps))
    result = bench.run_isend(nodes, ppn, args.sizes)
    print(pdf_plots(result, args.sizes))
    print()
    print(tail_report(result))
    return 0


def cmd_predict(args) -> int:
    spec = perseus()
    if args.db:
        db = DistributionDB.load(args.db)
    else:
        print("no --db given: running a quick benchmark campaign first...")
        bench = MPIBench(spec, seed=args.seed, settings=BenchSettings(reps=50))
        configs = [(1, 2), (2, 1), (8, 1), (16, 1), (32, 1)]
        db = bench.sweep_isend(configs, sizes=[0, 512, 1024, 2048])
    params = {
        "iterations": args.iterations,
        "xsize": 256,
        "serial_time": spec.jacobi_serial_time,
    }
    serial = jacobi_serial_time(spec, args.iterations)
    preds = compare_timing_modes(
        parse_jacobi(), args.nprocs, db, runs=args.runs, seed=args.seed,
        params=params, ppn=args.ppn, workers=args.workers,
        cache_dir=args.cache_dir, vector_runs=args.vector_runs,
    )
    rows = []
    measured = None
    if args.measure:
        measured = run_program(
            spec, jacobi_smpi, nprocs=args.nprocs, ppn=args.ppn,
            seed=42, args=(args.iterations,),
        ).elapsed
        rows.append(["measured (simulated run)", format_time(measured),
                     f"{serial / measured:.2f}", "-"])
    for name, pred in preds.items():
        err = (
            f"{(pred.mean_time - measured) / measured * 100:+.1f}%"
            if measured
            else "-"
        )
        rows.append([name, format_time(pred.mean_time),
                     f"{pred.speedup(serial):.2f}", err])
    print(
        format_table(
            ["timing source", "predicted time", "speedup", "error"],
            rows,
            title=f"Jacobi {args.iterations} iters on {args.nprocs} procs "
                  f"(ppn={args.ppn})",
        )
    )
    if args.vector_runs and args.runs >= 2:
        from .pevpm import render_run_spread

        dist = preds.get("distribution-nxp")
        if dist is not None:
            print()
            print(render_run_spread(dist.times))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "info": cmd_info,
        "bench": cmd_bench,
        "pdf": cmd_pdf,
        "predict": cmd_predict,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
