"""Command-line interface: ``repro`` (or ``python -m repro``).

Subcommands:

* ``repro info``      -- describe the simulated cluster;
* ``repro bench``     -- run an MPIBench campaign, print the Figure 1/2
  style table, optionally save the distribution database as JSON;
* ``repro pdf``       -- print distribution tables/ASCII plots for one
  configuration (the Figure 3/4 views);
* ``repro predict``   -- build/load a database and predict a registered
  workload's run time with PEVPM (``--model jacobi|fft|taskfarm|halo|amg``,
  ``--model-params JSON``), comparing timing modes (``--json`` for the
  machine-readable record the service also serves);
* ``repro import-trace`` -- parse a recorded MPI trace (JSON-lines or
  OTF2-like text) into a validated model program; ``--export`` the
  canonical form, ``--upload`` it to a service's ``/programs``
  endpoint, or ``--predict`` it locally across timing modes;
* ``repro serve``     -- run the prediction service (HTTP/JSON); drains
  gracefully on SIGTERM/SIGINT, and ``--chaos`` enables the
  fault-injection endpoint;
* ``repro loadgen``   -- drive a running service with closed-loop load
  (``--retries`` adds client-side backoff);
* ``repro registry``  -- manage the service's distribution registry
  (list / upload / promote / delete versioned cluster databases);
* ``repro chaos``     -- arm deterministic faults on a ``--chaos``
  server (kill a pool worker, corrupt/delay the disk cache, stall the
  evaluator) and inspect what fired;
* ``repro trace``     -- fetch recent request traces from a running
  service and render them as per-stage ASCII waterfalls.

Exit codes: 0 on success, 3 when the modelled (or simulated) program
deadlocks -- deadlock discovery is a PEVPM feature (Section 5), and
scripts must be able to distinguish it from success.
"""

from __future__ import annotations

import argparse
import json
import sys

from . import __version__
from ._tables import format_table, format_time
from .apps.jacobi import jacobi_serial_time, jacobi_smpi, parse_jacobi
from .mpibench import BenchSettings, DistributionDB, MPIBench
from .mpibench.report import average_times_table, pdf_plots, tail_report
from .pevpm import ModelDeadlock, compare_timing_modes
from .simnet import perseus
from .smpi import MpiDeadlock, run_program

__all__ = ["main", "build_parser"]

DEFAULT_SIZES = [0, 256, 1024, 4096, 16384, 65536]

#: exit code for deadlock detected in the model or the simulated run
EXIT_DEADLOCK = 3


def _parse_config(text: str) -> tuple[int, int]:
    """Parse an ``NxP`` configuration label like ``64x2``."""
    try:
        nodes, ppn = text.lower().split("x")
        return int(nodes), int(ppn)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"config must look like '8x1' or '64x2', got {text!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MPIBench + PEVPM reproduction (Grove & Coddington)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="describe the simulated cluster")
    p_info.add_argument("--nodes", type=int, default=116)

    p_bench = sub.add_parser("bench", help="run an MPIBench campaign")
    p_bench.add_argument(
        "--config", type=_parse_config, action="append", dest="configs",
        help="NxP configuration, repeatable (default: 2x1 8x1 32x1)",
    )
    p_bench.add_argument("--sizes", type=int, nargs="+", default=DEFAULT_SIZES)
    p_bench.add_argument("--reps", type=int, default=60)
    p_bench.add_argument(
        "--target-rse", type=float, default=None, metavar="FRAC",
        help="auto-reps: after the first --reps repetitions keep doubling "
             "until every (op, size) mean has a 95%% CI half-width within "
             "this fraction of the mean (e.g. 0.01), or --max-reps is hit",
    )
    p_bench.add_argument(
        "--max-reps", type=int, default=1600, metavar="N",
        help="auto-reps spend cap per message size (default 1600)",
    )
    p_bench.add_argument("--seed", type=int, default=1)
    p_bench.add_argument("--save", metavar="FILE", help="save DB as JSON")
    p_bench.add_argument(
        "--export", metavar="FILE.dat",
        help="also write the mean-time curves as a gnuplot .dat series",
    )

    p_pdf = sub.add_parser("pdf", help="show timing distributions (Fig 3/4)")
    p_pdf.add_argument("--config", type=_parse_config, default=(64, 1))
    p_pdf.add_argument("--sizes", type=int, nargs="+", default=[0, 1024, 16384])
    p_pdf.add_argument("--reps", type=int, default=60)
    p_pdf.add_argument("--seed", type=int, default=1)

    p_pred = sub.add_parser(
        "predict", help="PEVPM prediction of a registered workload (Fig 6)"
    )
    p_pred.add_argument(
        "--model", default="jacobi",
        choices=["jacobi", "fft", "taskfarm", "halo", "amg"],
        help="workload to predict (the service's model registry; "
             "imported traces go through 'repro import-trace')",
    )
    p_pred.add_argument(
        "--model-params", metavar="JSON", default=None,
        help="model parameters as JSON, e.g. '{\"nx\": 32, \"px\": 2}' "
             "(defaults: GET /models on a running service)",
    )
    p_pred.add_argument("--db", metavar="FILE", help="load a saved DistributionDB")
    p_pred.add_argument("--nprocs", type=int, default=16)
    p_pred.add_argument("--ppn", type=int, default=1)
    p_pred.add_argument("--iterations", type=int, default=200)
    p_pred.add_argument("--runs", type=int, default=5)
    p_pred.add_argument(
        "--target-rse", type=float, default=None, metavar="FRAC",
        help="adaptive mode: ignore --runs and keep doubling Monte Carlo "
             "runs until each mode's mean has a 95%% CI half-width within "
             "this fraction of the mean (e.g. 0.01)",
    )
    p_pred.add_argument(
        "--min-runs", type=int, default=4, metavar="N",
        help="adaptive mode: first total evaluated (default 4)",
    )
    p_pred.add_argument(
        "--max-runs", type=int, default=256, metavar="N",
        help="adaptive mode: hard run cap (default 256)",
    )
    p_pred.add_argument("--seed", type=int, default=1)
    p_pred.add_argument(
        "--measure", action="store_true",
        help="also run the real (simulated) Jacobi for comparison",
    )
    p_pred.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for the Monte Carlo runs "
             "(default: one per host core; results are identical either way)",
    )
    p_pred.add_argument(
        "--cache-dir", metavar="DIR",
        help="reuse finished predictions from this on-disk cache",
    )
    p_pred.add_argument(
        "--vector-runs", action="store_true",
        help="evaluate Monte Carlo runs in lockstep batches on the "
             "vectorised engine (fastest; statistically equivalent to "
             "per-run evaluation, and composes with --workers)",
    )
    p_pred.add_argument(
        "--compiled", action=argparse.BooleanOptionalAction, default=True,
        help="lower models to static per-rank schedules before evaluation "
             "(bit-identical results; --no-compiled forces the generator "
             "interpreter)",
    )
    p_pred.add_argument(
        "--json", action="store_true",
        help="print the machine-readable prediction record (the same "
             "serialisation the prediction service returns) instead of "
             "the table",
    )

    p_imp = sub.add_parser(
        "import-trace",
        help="parse a recorded MPI trace into a predictable model program",
    )
    p_imp.add_argument(
        "file", metavar="FILE",
        help="trace file (JSON-lines or OTF2-like text; '-' reads stdin)",
    )
    p_imp.add_argument(
        "--name", default=None,
        help="program name (default: the trace's own, else the file stem)",
    )
    p_imp.add_argument(
        "--export", metavar="FILE", default=None,
        help="re-export the validated program as canonical JSON-lines",
    )
    p_imp.add_argument(
        "--upload", action="store_true",
        help="POST the trace to a running service's /programs endpoint",
    )
    p_imp.add_argument("--host", default="127.0.0.1")
    p_imp.add_argument("--port", type=int, default=8080)
    p_imp.add_argument("--tenant", default=None, metavar="NAME")
    p_imp.add_argument(
        "--predict", action="store_true",
        help="predict the imported program locally across timing modes",
    )
    p_imp.add_argument(
        "--db", metavar="FILE",
        help="DistributionDB for --predict (default: quick campaign)",
    )
    p_imp.add_argument("--runs", type=int, default=5)
    p_imp.add_argument("--seed", type=int, default=1)
    p_imp.add_argument(
        "--json", action="store_true",
        help="print the program's metadata record as JSON",
    )

    p_serve = sub.add_parser(
        "serve", help="run the HTTP/JSON prediction service"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8100)
    p_serve.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="server processes to run (N > 1: supervised sharded tier "
             "with consistent-hash routing and a shared disk cache)",
    )
    p_serve.add_argument(
        "--reuseport", action="store_true",
        help="with --shards: bind every shard to the public port via "
             "SO_REUSEPORT and let the kernel spread connections, "
             "instead of running the front router",
    )
    p_serve.add_argument(
        "--db", metavar="FILE",
        help="serve from a saved DistributionDB (default: run a quick "
             "benchmark campaign at start-up)",
    )
    p_serve.add_argument(
        "--reps", type=int, default=50,
        help="benchmark repetitions for the start-up campaign (no --db)",
    )
    p_serve.add_argument("--seed", type=int, default=1)
    p_serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes per engine evaluation (results are "
             "identical for any setting)",
    )
    p_serve.add_argument(
        "--cache-dir", metavar="DIR",
        help="on-disk prediction cache tier (shared with repro predict)",
    )
    p_serve.add_argument("--lru-size", type=int, default=1024)
    p_serve.add_argument("--max-batch", type=int, default=8)
    p_serve.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="micro-batching window in milliseconds",
    )
    p_serve.add_argument("--queue-limit", type=int, default=64)
    p_serve.add_argument(
        "--deadline-s", type=float, default=30.0,
        help="default per-request deadline (504 when exceeded)",
    )
    p_serve.add_argument(
        "--no-batch", action="store_true",
        help="disable micro-batching (one evaluation per request)",
    )
    p_serve.add_argument(
        "--no-dedup", action="store_true",
        help="disable singleflight deduplication",
    )
    p_serve.add_argument(
        "--no-cache", action="store_true",
        help="disable the LRU/disk cache tiers",
    )
    p_serve.add_argument(
        "--breaker-threshold", type=int, default=5,
        help="consecutive engine failures that open the circuit breaker",
    )
    p_serve.add_argument(
        "--breaker-cooldown", type=float, default=2.0,
        help="seconds the open breaker sheds before probing the engine",
    )
    p_serve.add_argument(
        "--drain-grace", type=float, default=10.0,
        help="seconds to let in-flight requests finish on SIGTERM/SIGINT",
    )
    p_serve.add_argument(
        "--chaos", action="store_true",
        help="enable the /chaos fault-injection endpoint (repro chaos)",
    )
    p_serve.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed for the fault injector's own randomness",
    )
    p_serve.add_argument(
        "--no-trace", action="store_true",
        help="disable request tracing (spans, /trace, X-Repro-Trace)",
    )
    p_serve.add_argument(
        "--trace-buffer", type=int, default=256, metavar="N",
        help="finished traces kept in the ring buffer behind GET /trace",
    )
    p_serve.add_argument(
        "--log-json", action="store_true",
        help="emit one structured JSON log line per served /predict",
    )
    p_serve.add_argument(
        "--registry-dir", metavar="DIR",
        help="on-disk distribution registry root (default: in-memory "
             "standalone; a shared temp dir with --shards)",
    )
    p_serve.add_argument(
        "--seed-registry", action=argparse.BooleanOptionalAction,
        default=True,
        help="register the built-in cluster fleet (gigabit + degraded "
             "perseus) at start-up (--no-seed-registry skips the fits)",
    )
    p_serve.add_argument(
        "--seed-reps", type=int, default=24,
        help="benchmark repetitions for the built-in registry fits",
    )
    p_serve.add_argument(
        "--tenant-rate", type=float, default=0.0, metavar="RPS",
        help="per-tenant request rate limit (token bucket; 0 disables)",
    )

    p_trace = sub.add_parser(
        "trace", help="fetch traces from a running service as waterfalls"
    )
    p_trace.add_argument("--host", default="127.0.0.1")
    p_trace.add_argument("--port", type=int, default=8100)
    p_trace.add_argument(
        "--id", default=None, metavar="TRACE_ID",
        help="one specific trace (default: the most recent ones)",
    )
    p_trace.add_argument(
        "--limit", type=int, default=5, metavar="N",
        help="how many recent traces to show (without --id)",
    )
    p_trace.add_argument(
        "--json", action="store_true",
        help="print the raw trace documents instead of waterfalls",
    )

    p_chaos = sub.add_parser(
        "chaos", help="arm faults on a --chaos prediction service"
    )
    p_chaos.add_argument(
        "action",
        choices=[
            "status", "kill-worker", "corrupt-cache", "delay-cache",
            "stall", "plan",
        ],
        help="fault to arm (or 'status' to inspect the injector)",
    )
    p_chaos.add_argument("--host", default="127.0.0.1")
    p_chaos.add_argument("--port", type=int, default=8100)
    p_chaos.add_argument(
        "--seconds", type=float, default=0.05,
        help="stall/delay duration for delay-cache, stall and plan",
    )
    p_chaos.add_argument(
        "--at", type=int, default=None, metavar="N",
        help="site event index to fire on (default: next event)",
    )
    p_chaos.add_argument(
        "--key", default=None,
        help="corrupt-cache: a specific request key (default: seeded pick)",
    )
    p_chaos.add_argument(
        "--seed", type=int, default=0, help="plan: the schedule seed"
    )
    p_chaos.add_argument(
        "--length", type=int, default=4, help="plan: number of faults"
    )

    p_reg = sub.add_parser(
        "registry", help="manage a running service's distribution registry"
    )
    reg_sub = p_reg.add_subparsers(dest="registry_command", required=True)

    def _reg_common(p):
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=8100)
        p.add_argument(
            "--tenant", default=None,
            help="tenant namespace (X-Repro-Tenant; default: public)",
        )
        p.add_argument(
            "--json", action="store_true",
            help="print the raw response document",
        )

    p_reg_ls = reg_sub.add_parser("ls", help="list the registry fleet")
    _reg_common(p_reg_ls)

    p_reg_add = reg_sub.add_parser(
        "add", help="upload a database (a saved JSON file or a fitted topology)"
    )
    _reg_common(p_reg_add)
    p_reg_add.add_argument(
        "--db", metavar="FILE",
        help="a saved DistributionDB JSON to upload verbatim",
    )
    p_reg_add.add_argument(
        "--topology", metavar="NAME",
        help="a simnet topology to simulate and fit server-side "
             "(perseus, gigabit, perseus-degraded, ideal)",
    )
    p_reg_add.add_argument(
        "--nodes", type=int, default=None, help="topology node count"
    )
    p_reg_add.add_argument(
        "--reps", type=int, default=24, help="topology fit repetitions"
    )
    p_reg_add.add_argument(
        "--seed", type=int, default=7, help="topology fit seed"
    )
    p_reg_add.add_argument(
        "--alias", default=None,
        help="also point this alias at the uploaded database",
    )

    p_reg_promote = reg_sub.add_parser(
        "promote", help="hot-swap an alias to a database (zero restart)"
    )
    _reg_common(p_reg_promote)
    p_reg_promote.add_argument("ref", help="target alias or fingerprint")
    p_reg_promote.add_argument("alias", help="alias to (re)point")

    p_reg_rm = reg_sub.add_parser("rm", help="delete a database")
    _reg_common(p_reg_rm)
    p_reg_rm.add_argument("ref", help="alias or fingerprint to delete")

    p_load = sub.add_parser(
        "loadgen", help="closed-loop load against a running service"
    )
    p_load.add_argument("--host", default="127.0.0.1")
    p_load.add_argument("--port", type=int, default=8100)
    p_load.add_argument(
        "--endpoints", nargs="+", metavar="HOST:PORT",
        help="shard addresses for client-side consistent-hash routing "
             "(endpoint order must match shard ids; overrides "
             "--host/--port)",
    )
    p_load.add_argument(
        "--concurrency", type=int, nargs="+", default=[1, 8],
        help="closed-loop client counts to sweep",
    )
    p_load.add_argument(
        "--duration", type=float, default=5.0,
        help="seconds per concurrency level",
    )
    p_load.add_argument("--model", default="jacobi")
    p_load.add_argument("--nprocs", type=int, default=8)
    p_load.add_argument("--runs", type=int, default=16)
    p_load.add_argument(
        "--target-rse", type=float, default=None, metavar="FRAC",
        help="send adaptive precision-targeted requests (the service "
             "decides the run count; replaces --runs in the body)",
    )
    p_load.add_argument(
        "--model-params", metavar="JSON", default=None,
        help='model parameters, e.g. \'{"iterations": 20}\'',
    )
    p_load.add_argument(
        "--distinct-seeds", type=int, default=16, metavar="K",
        help="cycle requests over K distinct seeds (K distinct cache keys)",
    )
    p_load.add_argument(
        "--retries", type=int, default=0, metavar="K",
        help="client-side retry attempts with capped jittered backoff "
             "(0: measure the raw service, every 429/504 verbatim)",
    )
    p_load.add_argument(
        "--retry-base", type=float, default=0.05,
        help="first backoff step in seconds (doubles per attempt)",
    )
    p_load.add_argument(
        "--json", action="store_true",
        help="print per-level results as JSON instead of a table",
    )
    return parser


def cmd_info(args) -> int:
    spec = perseus(args.nodes)
    rows = [
        ["name", spec.name],
        ["nodes", spec.n_nodes],
        ["processors/node", spec.processors_per_node],
        ["link bandwidth", f"{spec.link_bandwidth * 8 / 1e6:.0f} Mbit/s"],
        ["switches", f"{spec.n_switches} x {spec.ports_per_switch} ports"],
        ["backplane/link", f"{spec.backplane_bandwidth * 8 / 1e9:.1f} Gbit/s"],
        ["eager threshold", f"{spec.eager_threshold} B"],
        ["TCP RTO", format_time(spec.tcp.rto)],
    ]
    print(format_table(["parameter", "value"], rows, title="Simulated cluster"))
    return 0


def cmd_bench(args) -> int:
    configs = args.configs or [(2, 1), (8, 1), (32, 1)]
    spec = perseus()
    bench = MPIBench(
        spec,
        seed=args.seed,
        settings=BenchSettings(
            reps=args.reps,
            target_rse=args.target_rse,
            max_reps=max(args.max_reps, args.reps),
        ),
    )
    db = bench.sweep_isend(configs, sizes=args.sizes)
    if args.target_rse is not None:
        for nodes, ppn in configs:
            meta = db.result("isend", nodes, ppn).metadata.get("auto_reps")
            if meta:
                state = "converged" if meta["converged"] else "hit cap"
                print(
                    f"auto-reps {nodes}x{ppn}: {meta['reps']} reps over "
                    f"{meta['rounds']} round(s), {state} "
                    f"(target RSE {meta['target_rse']:g})"
                )
        print()
    print(average_times_table(db, "isend", args.sizes, configs))
    if args.save:
        db.save(args.save)
        print(f"\nsaved distribution database to {args.save}")
    if args.export:
        from .mpibench import export_series

        out = export_series(db, "isend", args.export)
        print(f"exported gnuplot series to {out}")
    return 0


def cmd_pdf(args) -> int:
    nodes, ppn = args.config
    spec = perseus()
    bench = MPIBench(spec, seed=args.seed, settings=BenchSettings(reps=args.reps))
    result = bench.run_isend(nodes, ppn, args.sizes)
    print(pdf_plots(result, args.sizes))
    print()
    print(tail_report(result))
    return 0


def _resolve_workload(args, spec):
    """Build (params, model, vm_params, serial_time) for ``--model``.

    Parameters come from the service's model registry defaults, overridden
    by ``--model-params`` JSON.  For backward compatibility the jacobi
    model additionally honours ``--iterations`` (overridden in turn by an
    explicit ``--model-params`` entry).
    """
    from .apps import (
        amg_serial_time,
        fft_serial_time,
        halo_serial_time,
        make_tasks,
        taskfarm_serial_time,
    )
    from .service.records import MODELS

    defaults, builder = MODELS[args.model]
    params = dict(defaults)
    if args.model == "jacobi":
        params["iterations"] = args.iterations
    if args.model_params:
        overrides = json.loads(args.model_params)
        if not isinstance(overrides, dict):
            raise ValueError("--model-params must be a JSON object")
        unknown = sorted(set(overrides) - set(defaults))
        if unknown:
            raise ValueError(
                f"unknown {args.model} parameter(s): {', '.join(unknown)} "
                f"(expected a subset of: {', '.join(sorted(defaults))})"
            )
        params.update(overrides)
    model, vm_params = builder(spec, params)
    if args.model == "jacobi":
        serial = jacobi_serial_time(spec, params["iterations"])
    elif args.model == "fft":
        serial = fft_serial_time(params["n_points"])
    elif args.model == "taskfarm":
        serial = taskfarm_serial_time(make_tasks(
            params["n_tasks"], mean=params["task_mean"],
            cv=params["task_cv"], seed=params["task_seed"],
        ))
    elif args.model == "halo":
        serial = halo_serial_time(
            params["nx"], params["dims"], params["iterations"]
        )
    else:  # amg
        serial = amg_serial_time(
            params["nx"], params["dims"], params["iterations"]
        )
    return params, model, vm_params, serial


def cmd_predict(args) -> int:
    spec = perseus()
    if args.measure and args.model != "jacobi":
        print(
            "repro predict: --measure only supports the jacobi model "
            "(the other workloads have no smpi reference run)",
            file=sys.stderr,
        )
        return 2
    try:
        params, model, vm_params, serial = _resolve_workload(args, spec)
    except ValueError as exc:
        print(f"repro predict: {exc}", file=sys.stderr)
        return 1
    if args.db:
        db = DistributionDB.load(args.db)
    else:
        if not args.json:
            print("no --db given: running a quick benchmark campaign first...")
        bench = MPIBench(spec, seed=args.seed, settings=BenchSettings(reps=50))
        configs = [(1, 2), (2, 1), (8, 1), (16, 1), (32, 1)]
        db = bench.sweep_isend(configs, sizes=[0, 512, 1024, 2048])
    try:
        preds = compare_timing_modes(
            model, args.nprocs, db, runs=args.runs, seed=args.seed,
            params=vm_params, ppn=args.ppn, workers=args.workers,
            cache_dir=args.cache_dir, vector_runs=args.vector_runs,
            compiled=args.compiled, target_rse=args.target_rse,
            min_runs=args.min_runs, max_runs=args.max_runs,
        )
        measured = None
        if args.measure:
            measured = run_program(
                spec, jacobi_smpi, nprocs=args.nprocs, ppn=args.ppn,
                seed=42, args=(args.iterations,),
            ).elapsed
    except (ModelDeadlock, MpiDeadlock) as exc:
        if args.json:
            print(json.dumps({"error": "deadlock", "detail": str(exc)}))
        print(f"repro predict: deadlock detected: {exc}", file=sys.stderr)
        return EXIT_DEADLOCK
    if args.json:
        from .service.records import prediction_record

        doc = {
            "workload": {
                "model": args.model,
                "model_params": params,
                "nprocs": args.nprocs,
                "ppn": args.ppn,
                # Adaptive mode decides the run count per timing mode;
                # each prediction record carries its achieved total.
                "runs": None if args.target_rse is not None else args.runs,
                "target_rse": args.target_rse,
                "seed": args.seed,
            },
            "serial_time": serial,
            "db_fingerprint": db.fingerprint(),
            "predictions": {
                name: prediction_record(
                    pred,
                    seed=args.seed,
                    vector_runs=args.vector_runs,
                    compiled=args.compiled,
                    nic_serialisation="tx",
                    workers=args.workers,
                    extra={"speedup": pred.speedup(serial)},
                )
                for name, pred in preds.items()
            },
        }
        if measured is not None:
            doc["measured_time"] = measured
        print(json.dumps(doc, indent=2))
        return 0
    rows = []
    adaptive = args.target_rse is not None
    if measured is not None:
        rows.append(["measured (simulated run)", format_time(measured),
                     f"{serial / measured:.2f}", "-"]
                    + (["-"] if adaptive else []))
    for name, pred in preds.items():
        err = (
            f"{(pred.mean_time - measured) / measured * 100:+.1f}%"
            if measured
            else "-"
        )
        row = [name, format_time(pred.mean_time),
               f"{pred.speedup(serial):.2f}", err]
        if adaptive:
            info = pred.precision or {}
            mark = "" if info.get("converged", True) else " (cap)"
            row.append(f"{pred.runs}{mark}")
        rows.append(row)
    headers = ["timing source", "predicted time", "speedup", "error"]
    if adaptive:
        headers.append("runs")
    print(
        format_table(
            headers,
            rows,
            title=f"{args.model} ({_params_summary(params)}) "
                  f"on {args.nprocs} procs (ppn={args.ppn})",
        )
    )
    if adaptive:
        print(f"\nadaptive: target RSE {args.target_rse:g}, "
              f"min {args.min_runs} / max {args.max_runs} runs per mode")
    if args.vector_runs and args.runs >= 2:
        from .pevpm import render_run_spread

        dist = preds.get("distribution-nxp")
        if dist is not None:
            print()
            print(render_run_spread(dist.times))
    return 0


def _params_summary(params: dict) -> str:
    return ", ".join(f"{k}={params[k]}" for k in sorted(params))


def cmd_import_trace(args) -> int:
    from pathlib import Path

    from .trace_import import TraceDeadlock, TraceError, parse_trace

    if args.file == "-":
        text = sys.stdin.read()
        default_name = args.name
    else:
        path = Path(args.file)
        try:
            text = path.read_text()
        except OSError as exc:
            print(f"repro import-trace: {exc}", file=sys.stderr)
            return 1
        default_name = args.name or path.stem
    try:
        program = parse_trace(text, name=default_name)
    except TraceDeadlock as exc:
        if args.json:
            print(json.dumps({"error": "deadlock", "detail": str(exc)}))
        print(f"repro import-trace: deadlock detected: {exc}",
              file=sys.stderr)
        return EXIT_DEADLOCK
    except TraceError as exc:
        if args.json:
            print(json.dumps({"error": "invalid trace", "detail": str(exc)}))
        print(f"repro import-trace: invalid trace: {exc}", file=sys.stderr)
        return 1
    meta = program.meta()
    if args.export:
        Path(args.export).write_text(program.to_jsonl())
        if not args.json:
            print(f"exported canonical JSON-lines to {args.export}")
    if args.upload:
        from .service import ServiceClient, ServiceError

        client = ServiceClient(args.host, args.port, tenant=args.tenant)
        try:
            meta = client.program_add(text, name=program.name)
        except ServiceError as exc:
            print(f"repro import-trace: upload failed: {exc}",
                  file=sys.stderr)
            return 1
        except OSError as exc:
            print(
                f"repro import-trace: cannot reach "
                f"{args.host}:{args.port}: {exc}",
                file=sys.stderr,
            )
            return 1
        if not args.json:
            print(f"uploaded program {meta['fingerprint']} "
                  f"to {args.host}:{args.port}")
    doc = dict(meta)
    if args.predict:
        spec = perseus()
        if args.db:
            db = DistributionDB.load(args.db)
        else:
            if not args.json:
                print("no --db given: running a quick benchmark "
                      "campaign first...")
            bench = MPIBench(
                spec, seed=args.seed, settings=BenchSettings(reps=50)
            )
            configs = [(1, 2), (2, 1), (8, 1), (16, 1), (32, 1)]
            db = bench.sweep_isend(configs, sizes=[0, 512, 1024, 2048])
        preds = compare_timing_modes(
            program.model(), program.nprocs, db,
            runs=args.runs, seed=args.seed,
        )
        doc["db_fingerprint"] = db.fingerprint()
        doc["predictions"] = {
            name: {"mean_time": pred.mean_time, "times": list(pred.times)}
            for name, pred in preds.items()
        }
        if not args.json:
            rows = [
                [name, format_time(pred.mean_time)]
                for name, pred in preds.items()
            ]
            print()
            print(format_table(
                ["timing source", "predicted time"], rows,
                title=f"{program.name} on {program.nprocs} procs",
            ))
    if args.json:
        print(json.dumps(doc, indent=2))
    elif not (args.export or args.upload or args.predict):
        print(f"{program.name}: {program.nprocs} procs, "
              f"{meta['events']} events, {meta['messages']} messages")
        print(f"fingerprint: {program.fingerprint}")
    return 0


def cmd_serve(args) -> int:
    import asyncio
    import signal

    from .obs import Tracer
    from .service import FaultInjector, PredictionService, ServiceServer

    spec = perseus()
    if args.db:
        db = DistributionDB.load(args.db)
    else:
        print(
            f"no --db given: running a quick benchmark campaign "
            f"(reps={args.reps})...",
            flush=True,
        )
        bench = MPIBench(
            spec, seed=args.seed, settings=BenchSettings(reps=args.reps)
        )
        configs = [(1, 2), (2, 1), (8, 1), (16, 1), (32, 1)]
        db = bench.sweep_isend(configs, sizes=[0, 512, 1024, 2048])
    if args.shards > 1 or args.reuseport:
        import tempfile

        from .registry import RegistryStore
        from .registry.seeds import seed_builtin
        from .service.supervisor import Supervisor

        if args.chaos or args.log_json:
            print(
                "repro serve: --chaos and --log-json are per-process "
                "features; run them without --shards/--reuseport",
                file=sys.stderr,
            )
            return 2
        # Seed the shared registry plane once, in the parent, before any
        # shard opens it -- every shard then lists the same fleet.
        registry_dir = args.registry_dir or tempfile.mkdtemp(
            prefix="repro-registry-"
        )
        if args.seed_registry:
            print(
                f"seeding built-in registry fleet (reps={args.seed_reps})...",
                flush=True,
            )
            seeded = seed_builtin(
                RegistryStore(registry_dir), reps=args.seed_reps
            )
            print(f"registry fleet: {json.dumps(sorted(seeded))}", flush=True)
        supervisor = Supervisor(
            args.db if args.db else db,
            args.shards,
            host=args.host,
            port=args.port,
            cache_dir=args.cache_dir,
            reuse_port=args.reuseport,
            drain_grace=args.drain_grace,
            workers=args.workers,
            lru_size=args.lru_size,
            max_batch=args.max_batch,
            max_wait=args.max_wait_ms / 1e3,
            queue_limit=args.queue_limit,
            deadline_s=args.deadline_s,
            batching=not args.no_batch,
            dedup=not args.no_dedup,
            caching=not args.no_cache,
            tracing=not args.no_trace,
            trace_buffer=args.trace_buffer,
            registry_dir=registry_dir,
            tenant_rate=args.tenant_rate,
        )
        return supervisor.run()
    registry = None
    if args.registry_dir:
        from .registry import RegistryStore

        registry = RegistryStore(args.registry_dir)
    injector = FaultInjector(seed=args.chaos_seed) if args.chaos else None
    # Tracing is on by default for the served configuration (the CI
    # smoke scrapes /trace and the stage histograms); --no-trace keeps
    # every funnel call site on its guarded no-op path.
    tracer = None if args.no_trace else Tracer(capacity=args.trace_buffer)
    service = PredictionService(
        db,
        spec=spec,
        workers=args.workers,
        cache_dir=args.cache_dir,
        lru_size=args.lru_size,
        max_batch=args.max_batch,
        max_wait=args.max_wait_ms / 1e3,
        queue_limit=args.queue_limit,
        deadline_s=args.deadline_s,
        batching=not args.no_batch,
        dedup=not args.no_dedup,
        caching=not args.no_cache,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        fault_injector=injector,
        tracer=tracer,
        log_json=args.log_json,
        registry=registry,
        tenant_rate=args.tenant_rate,
    )
    if args.seed_registry:
        from .registry.seeds import seed_builtin

        print(
            f"seeding built-in registry fleet (reps={args.seed_reps})...",
            flush=True,
        )
        seeded = seed_builtin(service.registry, reps=args.seed_reps)
        print(f"registry fleet: {json.dumps(sorted(seeded))}", flush=True)
    server = ServiceServer(service, host=args.host, port=args.port)

    async def _serve() -> None:
        host, port = await server.start()
        chaos = " (chaos mode: /chaos enabled)" if args.chaos else ""
        print(
            f"repro service listening on http://{host}:{port}{chaos}",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        stop_signal = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop_signal.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-Unix loop: fall back to KeyboardInterrupt
        serve_task = asyncio.ensure_future(server.serve_forever())
        try:
            await stop_signal.wait()
            print(
                f"draining (grace {args.drain_grace:g}s)...", flush=True
            )
            await server.drain(args.drain_grace)
        finally:
            serve_task.cancel()
            await asyncio.gather(serve_task, return_exceptions=True)
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down")
    print("drained; bye", flush=True)
    return 0


def cmd_trace(args) -> int:
    from .obs import render_waterfall
    from .service.client import ServiceClient, ServiceError

    client = ServiceClient(args.host, args.port, timeout=10.0)
    try:
        if args.id is not None:
            docs = [client.trace(args.id)]
        else:
            docs = client.trace(limit=args.limit).get("traces", [])
    except ServiceError as exc:
        if exc.status == 404:
            print(f"repro trace: {exc}", file=sys.stderr)
            print(
                "(tracing may be disabled: restart the server without "
                "--no-trace)",
                file=sys.stderr,
            )
        else:
            print(f"repro trace: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(
            f"repro trace: cannot reach {args.host}:{args.port} ({exc})",
            file=sys.stderr,
        )
        return 1
    finally:
        client.close()
    if args.json:
        print(json.dumps(docs if args.id is None else docs[0], indent=2))
        return 0
    if not docs:
        print("no traces recorded yet (serve a /predict first)")
        return 0
    for i, doc in enumerate(docs):
        if i:
            print()
        print(render_waterfall(doc))
    return 0


def cmd_chaos(args) -> int:
    from .service.client import ServiceClient, ServiceError

    client = ServiceClient(args.host, args.port, timeout=10.0)
    try:
        if args.action == "status":
            doc = client.chaos()
        elif args.action == "plan":
            doc = client.chaos({
                "plan": {
                    "seed": args.seed,
                    "length": args.length,
                    "max_seconds": args.seconds,
                },
            })
        else:
            kind = {
                "kill-worker": "kill_worker",
                "corrupt-cache": "corrupt_cache",
                "delay-cache": "delay_cache",
                "stall": "stall_evaluator",
            }[args.action]
            payload = {"kind": kind, "seconds": args.seconds}
            if args.at is not None:
                payload["at"] = args.at
            if args.key is not None:
                payload["key"] = args.key
            doc = client.chaos(payload)
    except ServiceError as exc:
        if exc.status == 404:
            print(
                "repro chaos: the server is not in chaos mode "
                "(restart it with 'repro serve --chaos')",
                file=sys.stderr,
            )
        else:
            print(f"repro chaos: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(
            f"repro chaos: cannot reach {args.host}:{args.port} ({exc})",
            file=sys.stderr,
        )
        return 1
    finally:
        client.close()
    print(json.dumps(doc, indent=2))
    return 0


def cmd_registry(args) -> int:
    from .service.client import ServiceClient, ServiceError

    client = ServiceClient(
        args.host, args.port, timeout=120.0, tenant=args.tenant
    )
    try:
        if args.registry_command == "ls":
            doc = client.registry_list()
            if args.json:
                print(json.dumps(doc, indent=2))
                return 0
            aliases = doc.get("aliases", {})
            by_fpr: dict[str, list[str]] = {}
            for alias, fpr in aliases.items():
                by_fpr.setdefault(fpr, []).append(alias)
            rows = [
                [
                    entry.get("fingerprint", "")[:12],
                    entry.get("cluster", "?"),
                    entry.get("tenant", "?"),
                    str(entry.get("results", "?")),
                    str(entry.get("bytes", "?")),
                    ",".join(sorted(entry.get("aliases", []))) or "-",
                ]
                for entry in doc.get("dbs", [])
            ]
            print(
                format_table(
                    ["fingerprint", "cluster", "tenant", "results", "bytes",
                     "aliases"],
                    rows,
                    title="distribution registry",
                )
            )
            return 0
        if args.registry_command == "add":
            if bool(args.db) == bool(args.topology):
                print(
                    "repro registry add: give exactly one of --db FILE "
                    "or --topology NAME",
                    file=sys.stderr,
                )
                return 2
            if args.db:
                with open(args.db) as fh:
                    results = json.load(fh)
                doc = client.registry_add(results=results, alias=args.alias)
            else:
                topology = {
                    "spec": args.topology,
                    "reps": args.reps,
                    "seed": args.seed,
                }
                if args.nodes is not None:
                    topology["n_nodes"] = args.nodes
                doc = client.registry_add(topology=topology, alias=args.alias)
        elif args.registry_command == "promote":
            doc = client.registry_promote(args.ref, args.alias)
        else:  # rm
            doc = client.registry_delete(args.ref)
    except ServiceError as exc:
        print(f"repro registry: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(
            f"repro registry: cannot reach {args.host}:{args.port} ({exc})",
            file=sys.stderr,
        )
        return 1
    finally:
        client.close()
    print(json.dumps(doc, indent=2))
    return 0


def cmd_loadgen(args) -> int:
    from .service.client import LoadGenerator, RetryPolicy, ServiceClient

    model_params = json.loads(args.model_params) if args.model_params else {}

    def request_factory(sequence: int) -> dict:
        body = {
            "model": args.model,
            "model_params": model_params,
            "nprocs": args.nprocs,
            "seed": sequence % args.distinct_seeds,
        }
        # runs and target_rse are mutually exclusive in the request
        # schema: adaptive bodies carry the precision target only.
        if args.target_rse is not None:
            body["target_rse"] = args.target_rse
        else:
            body["runs"] = args.runs
        return body

    endpoints = None
    if args.endpoints:
        endpoints = []
        for text in args.endpoints:
            host, _, port = text.rpartition(":")
            if not host or not port.isdigit():
                print(
                    f"repro loadgen: --endpoints entries must look like "
                    f"HOST:PORT, got {text!r}",
                    file=sys.stderr,
                )
                return 2
            endpoints.append((host, int(port)))
    # Fail fast (and warm the campaign-dependent code paths) before
    # unleashing the client threads.
    for host, port in endpoints or [(args.host, args.port)]:
        ServiceClient(host, port).healthz()
    retry = None
    if args.retries > 0:
        retry = RetryPolicy(retries=args.retries, base=args.retry_base)
    summaries = []
    for concurrency in args.concurrency:
        gen = LoadGenerator(
            args.host, args.port, request_factory, concurrency=concurrency,
            retry=retry, endpoints=endpoints,
        )
        result = gen.run(duration=args.duration)
        summaries.append(result.summary())
    if args.json:
        print(json.dumps(summaries, indent=2))
        return 0
    rows = [
        [
            str(s["concurrency"]), str(s["requests"]), str(s["errors"]),
            str(s["retries"]),
            f"{s['throughput_rps']:.1f}", f"{s['p50_ms']:.2f}",
            f"{s['p99_ms']:.2f}",
        ]
        for s in summaries
    ]
    print(
        format_table(
            ["clients", "requests", "errors", "retries", "rps", "p50 ms",
             "p99 ms"],
            rows,
            title=f"closed-loop load: {args.model} x{args.nprocs} "
                  f"({args.duration:g}s per level)",
        )
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "info": cmd_info,
        "bench": cmd_bench,
        "pdf": cmd_pdf,
        "predict": cmd_predict,
        "import-trace": cmd_import_trace,
        "serve": cmd_serve,
        "registry": cmd_registry,
        "loadgen": cmd_loadgen,
        "chaos": cmd_chaos,
        "trace": cmd_trace,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
