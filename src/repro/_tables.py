"""Plain-text tables and ASCII plots.

The offline environment has no plotting stack, so every "figure" the
benchmark harness regenerates is emitted as a text table (the data series
of the paper's plot) plus, where it helps, an ASCII rendering.  These
helpers are deliberately dependency-free and used by
:mod:`repro.mpibench.report`, the examples and the benchmark scripts.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["format_table", "format_time", "ascii_pdf", "ascii_curve"]


def format_time(seconds: float) -> str:
    """Human-scale rendering of a duration."""
    if seconds != seconds:  # NaN
        return "nan"
    a = abs(seconds)
    if a >= 1.0:
        return f"{seconds:.3g}s"
    if a >= 1e-3:
        return f"{seconds * 1e3:.3g}ms"
    if a >= 1e-6:
        return f"{seconds * 1e6:.3g}us"
    return f"{seconds * 1e9:.3g}ns"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    ncols = max(len(r) for r in cells)
    widths = [0] * ncols
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    for r, row in enumerate(cells):
        padded = [c.ljust(widths[i]) for i, c in enumerate(row)]
        lines.append(" | ".join(padded).rstrip())
        if r == 0:
            lines.append(sep)
    return "\n".join(lines)


def ascii_pdf(
    centres: np.ndarray,
    density: np.ndarray,
    width: int = 60,
    height: int = 10,
    label: str = "",
) -> str:
    """Render a probability-density curve as a block-character plot.

    Used to eyeball the Figure 3/4 histogram shapes in a terminal.
    """
    centres = np.asarray(centres, dtype=float)
    density = np.asarray(density, dtype=float)
    if centres.ndim != 1 or centres.shape != density.shape or centres.size == 0:
        raise ValueError("centres and density must be equal-length 1-D arrays")
    if width < 2 or height < 1:
        raise ValueError("width must be >= 2 and height >= 1")
    # Resample the curve onto `width` columns.
    xs = np.linspace(centres[0], centres[-1], width)
    ys = np.interp(xs, centres, density)
    top = ys.max()
    lines = []
    if label:
        lines.append(label)
    if top <= 0:
        lines.append("(all-zero density)")
        return "\n".join(lines)
    levels = np.round(ys / top * height).astype(int)
    for row in range(height, 0, -1):
        lines.append("".join("#" if lv >= row else " " for lv in levels))
    lines.append("-" * width)
    lines.append(f"{format_time(xs[0])}{' ' * max(1, width - 18)}{format_time(xs[-1])}")
    return "\n".join(lines)


def ascii_curve(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    logy: bool = False,
) -> str:
    """Render several y(x) series as a scatter of labelled characters.

    Each series is drawn with the first character of its label; collisions
    show the later series.  Good enough to see orderings and crossovers.
    """
    xs = np.asarray(list(xs), dtype=float)
    if xs.size == 0 or not series:
        raise ValueError("need at least one point and one series")
    grid = [[" "] * width for _ in range(height)]
    all_y = np.concatenate([np.asarray(list(v), dtype=float) for v in series.values()])
    if logy:
        all_y = np.log10(np.maximum(all_y, 1e-30))
    ylo, yhi = float(all_y.min()), float(all_y.max())
    if yhi == ylo:
        yhi = ylo + 1.0
    xlo, xhi = float(xs.min()), float(xs.max())
    if xhi == xlo:
        xhi = xlo + 1.0
    for label, ys in series.items():
        ys = np.asarray(list(ys), dtype=float)
        if logy:
            ys = np.log10(np.maximum(ys, 1e-30))
        for x, y in zip(xs, ys):
            col = int((x - xlo) / (xhi - xlo) * (width - 1))
            row = int((y - ylo) / (yhi - ylo) * (height - 1))
            grid[height - 1 - row][col] = label[0]
    lines = ["".join(r) for r in grid]
    lines.append("-" * width)
    legend = "  ".join(f"{k[0]}={k}" for k in series)
    lines.append(legend)
    return "\n".join(lines)
