"""High-level prediction API: Monte Carlo evaluation and speedups.

"The PEVPM approach is like a Monte Carlo simulation of performance, and
the number of [runs] can be chosen so that the statistical error in the
mean is negligibly small" (Section 6).  :func:`predict` evaluates a model
several times with independent random streams and aggregates; helpers
compute speedups (for Figure 6) and compare the paper's timing-source
variants side by side.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable, Generator

import numpy as np

from .directives import Block
from .interpreter import compile_model
from .machine import MachineResult, ProcContext, VirtualMachine
from .timing import TimingModel, timing_from_db
from .trace import LossReport

__all__ = ["Prediction", "predict", "predict_speedups", "compare_timing_modes"]


@dataclass
class Prediction:
    """Aggregated Monte Carlo prediction for one (model, nprocs, timing)."""

    nprocs: int
    timing_name: str
    times: list[float]  #: predicted completion time of each MC run
    results: list[MachineResult] = field(repr=False, default_factory=list)
    wall_time: float = 0.0  #: host seconds spent evaluating (the paper's cost metric)

    @property
    def mean_time(self) -> float:
        return float(np.mean(self.times))

    @property
    def std_time(self) -> float:
        return float(np.std(self.times))

    @property
    def stderr(self) -> float:
        return self.std_time / len(self.times) ** 0.5

    @property
    def runs(self) -> int:
        return len(self.times)

    def speedup(self, serial_time: float) -> float:
        """Predicted speedup relative to a one-process time."""
        if serial_time <= 0:
            raise ValueError("serial_time must be positive")
        return serial_time / self.mean_time

    @property
    def simulated_per_wall(self) -> float:
        """Simulated processor-seconds evaluated per host wall second --
        the paper's '67.5 times its actual execution speed' metric
        (which counts all processors' time)."""
        if self.wall_time <= 0:
            return float("inf")
        total_proc_seconds = sum(self.times) * self.nprocs
        return total_proc_seconds / self.wall_time

    def loss_report(self) -> LossReport | None:
        """Attribution for the last run, when it was traced."""
        last = self.results[-1] if self.results else None
        if last is None or last.trace is None:
            return None
        return LossReport(last.trace, last.elapsed, self.nprocs)


def _as_program(model) -> Callable[[ProcContext], Generator]:
    if isinstance(model, Block):
        return compile_model(model)
    if callable(model):
        return model
    raise TypeError(
        "model must be a directive Block or a program callable(ctx) -> generator"
    )


def predict(
    model,
    nprocs: int,
    timing: TimingModel,
    runs: int = 5,
    seed: int = 0,
    params: dict | None = None,
    trace_last: bool = False,
    nic_serialisation: str = "tx",
    ppn: int = 1,
) -> Prediction:
    """Evaluate *model* (directive Block or program callable) *runs* times.

    Each run uses an independent RNG stream derived from *seed*; the last
    run can be traced for loss attribution.
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    if isinstance(model, Block) and params is not None:
        program = compile_model(model, params)
    else:
        program = _as_program(model)
    times: list[float] = []
    results: list[MachineResult] = []
    t0 = _time.perf_counter()
    for run in range(runs):
        vm = VirtualMachine(
            nprocs,
            timing,
            seed=seed * 1_000_003 + run,
            params=params,
            trace=trace_last and run == runs - 1,
            nic_serialisation=nic_serialisation,
            ppn=ppn,
        )
        result = vm.run(program)
        times.append(result.elapsed)
        results.append(result)
    wall = _time.perf_counter() - t0
    return Prediction(
        nprocs=nprocs,
        timing_name=timing.name,
        times=times,
        results=results,
        wall_time=wall,
    )


def predict_speedups(
    model_factory: Callable[[int], object],
    proc_counts: list[int],
    timing_factory: Callable[[int], TimingModel],
    serial_time: float,
    runs: int = 5,
    seed: int = 0,
    params: dict | None = None,
    ppn: int = 1,
) -> dict[int, float]:
    """Speedup curve across machine sizes (the Figure 6 x-axis).

    *model_factory(nprocs)* builds the model for each size (symbolic
    models just return the same Block); *timing_factory(nprocs)* builds
    the timing source (average-n x p models depend on nprocs).
    """
    out: dict[int, float] = {}
    for nprocs in proc_counts:
        timing = timing_factory(nprocs)
        pred = predict(
            model_factory(nprocs), nprocs, timing, runs=runs, seed=seed,
            params=params, ppn=ppn,
        )
        out[nprocs] = pred.speedup(serial_time)
    return out


def compare_timing_modes(
    model,
    nprocs: int,
    db,
    modes: list[tuple[str, str]] | None = None,
    runs: int = 5,
    seed: int = 0,
    params: dict | None = None,
    nic_serialisation: str = "tx",
    ppn: int = 1,
) -> dict[str, Prediction]:
    """Run the paper's Figure 6 ablation at one machine size.

    *modes* is a list of (mode, source) pairs; defaults to the paper's
    four: distribution sampling vs. min/avg ping-pong vs. avg n x p.
    """
    modes = modes or [
        ("distribution", "nxp"),
        ("average", "2x1"),
        ("minimum", "2x1"),
        ("average", "nxp"),
    ]
    out: dict[str, Prediction] = {}
    for mode, source in modes:
        timing = timing_from_db(db, mode=mode, source=source, nprocs=nprocs)
        pred = predict(
            model, nprocs, timing, runs=runs, seed=seed, params=params,
            nic_serialisation=nic_serialisation, ppn=ppn,
        )
        out[f"{mode}-{source}"] = pred
    return out
