"""High-level prediction API: Monte Carlo evaluation and speedups.

"The PEVPM approach is like a Monte Carlo simulation of performance, and
the number of [runs] can be chosen so that the statistical error in the
mean is negligibly small" (Section 6).  :func:`predict` evaluates a model
several times with independent random streams and aggregates; helpers
compute speedups (for Figure 6) and compare the paper's timing-source
variants side by side.

All entry points route through :mod:`repro.pevpm.parallel`: Monte Carlo
runs (and the ``proc_counts`` / timing-mode axes of the helpers) fan out
over a process pool when ``workers`` allows, with per-run
``SeedSequence`` streams keeping serial and parallel evaluation
bit-identical for the same seed.  Pass ``cache_dir`` to reuse finished
evaluations across calls and processes, and ``vector_runs=True`` to
evaluate whole chunks of runs in one pass on the batched virtual
machine (:mod:`repro.pevpm.vector`) -- the highest-throughput mode.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .machine import MachineResult
from .parallel import (
    PredictionCache,
    RunGroup,
    as_seed_sequence,
    evaluate_groups,
    run_seeds,
)
from .timing import TimingModel, timing_from_db
from .trace import LossReport

__all__ = [
    "Prediction",
    "build_prediction",
    "prediction_from_doc",
    "predict",
    "predict_speedups",
    "compare_timing_modes",
]


@dataclass
class Prediction:
    """Aggregated Monte Carlo prediction for one (model, nprocs, timing)."""

    nprocs: int
    timing_name: str
    times: list[float]  #: predicted completion time of each MC run
    results: list[MachineResult] = field(repr=False, default_factory=list)
    wall_time: float = 0.0  #: host seconds spent evaluating (the paper's cost metric)
    run_walls: list[float] = field(default_factory=list)  #: host seconds per MC run
    cached: bool = False  #: True when served from the on-disk cache

    @property
    def mean_time(self) -> float:
        return float(np.mean(self.times))

    @property
    def std_time(self) -> float:
        return float(np.std(self.times))

    @property
    def stderr(self) -> float:
        return self.std_time / len(self.times) ** 0.5

    @property
    def runs(self) -> int:
        return len(self.times)

    def speedup(self, serial_time: float) -> float:
        """Predicted speedup relative to a one-process time."""
        if serial_time <= 0:
            raise ValueError("serial_time must be positive")
        return serial_time / self.mean_time

    @property
    def simulated_per_wall(self) -> float:
        """Simulated processor-seconds evaluated per host wall second --
        the paper's '67.5 times its actual execution speed' metric
        (which counts all processors' time)."""
        if self.wall_time <= 0:
            return float("inf")
        total_proc_seconds = sum(self.times) * self.nprocs
        return total_proc_seconds / self.wall_time

    @property
    def mean_run_wall(self) -> float:
        """Mean host seconds per Monte Carlo run (0 when unknown)."""
        if not self.run_walls:
            return 0.0
        return float(np.mean(self.run_walls))

    @property
    def max_run_wall(self) -> float:
        """Slowest single run's host seconds -- the parallel critical path."""
        if not self.run_walls:
            return 0.0
        return float(np.max(self.run_walls))

    def loss_report(self) -> LossReport | None:
        """Attribution for the last run, when it was traced."""
        last = self.results[-1] if self.results else None
        if last is None or last.trace is None:
            return None
        return LossReport(last.trace, last.elapsed, self.nprocs)


def build_prediction(group: RunGroup, outcomes, wall: float) -> Prediction:
    """Aggregate one group's :class:`~repro.pevpm.parallel.RunOutcome`
    list into a :class:`Prediction` -- the entry point shared by
    :func:`predict` and the prediction service's micro-batcher (which
    evaluates many groups per :func:`~repro.pevpm.parallel.evaluate_groups`
    call and builds each request's prediction separately)."""
    return Prediction(
        nprocs=group.nprocs,
        timing_name=group.timing.name,
        times=[o.elapsed for o in outcomes],
        results=[o.result for o in outcomes],
        wall_time=wall,
        run_walls=[o.wall for o in outcomes],
    )


def prediction_from_doc(doc: dict) -> Prediction:
    """Rehydrate a cached prediction document (the JSON form stored by
    :class:`~repro.pevpm.parallel.PredictionCache` and the service's
    in-memory tier) into a :class:`Prediction`."""
    return Prediction(
        nprocs=int(doc.get("nprocs", 0)),
        timing_name=str(doc.get("timing", "")),
        times=[float(t) for t in doc["times"]],
        results=[],
        wall_time=0.0,
        run_walls=[float(w) for w in doc.get("run_walls", [])],
        cached=True,
    )


def prediction_doc(group: RunGroup, pred: Prediction) -> dict:
    """The JSON-able cache document for one finished evaluation
    (inverse of :func:`prediction_from_doc`)."""
    return {
        "times": pred.times,
        "run_walls": pred.run_walls,
        "nprocs": group.nprocs,
        "timing": group.timing.name,
    }


def _evaluate_predictions(
    groups: list[RunGroup],
    workers: int | None,
    cache_dir,
) -> list[Prediction]:
    """Serve each group from the cache when possible; evaluate the rest
    (misses of *all* groups share one pool) and persist their results."""
    cache = PredictionCache(cache_dir) if cache_dir is not None else None
    preds: list[Prediction | None] = [None] * len(groups)
    keys: list[str | None] = [None] * len(groups)
    misses: list[int] = []
    for i, group in enumerate(groups):
        # Traced runs carry MachineResult/TraceRecorder state the JSON
        # cache does not hold -- always evaluate those live.
        if cache is None or group.trace_last:
            misses.append(i)
            continue
        key = keys[i] = cache.group_key(group)
        doc = cache.get(key)
        if doc is not None:
            preds[i] = prediction_from_doc(doc)
        else:
            misses.append(i)
    if misses:
        t0 = _time.perf_counter()
        outcomes = evaluate_groups([groups[i] for i in misses], workers=workers)
        wall = _time.perf_counter() - t0
        for i, group_outcomes in zip(misses, outcomes):
            # Attribute the shared pool's wall time to each group by its
            # own runs' host cost (exact when serial; proportional under
            # the pool).
            own = sum(o.wall for o in group_outcomes)
            total = sum(o.wall for per in outcomes for o in per) or 1.0
            preds[i] = build_prediction(groups[i], group_outcomes, wall * own / total)
            if cache is not None and keys[i] is not None:
                cache.put(keys[i], prediction_doc(groups[i], preds[i]))
    return preds  # type: ignore[return-value]


def predict(
    model,
    nprocs: int,
    timing: TimingModel,
    runs: int = 5,
    seed: int | np.random.SeedSequence = 0,
    params: dict | None = None,
    trace_last: bool = False,
    nic_serialisation: str = "tx",
    ppn: int = 1,
    workers: int | None = 1,
    cache_dir=None,
    vector_runs: bool = False,
    compiled: bool = True,
) -> Prediction:
    """Evaluate *model* (directive Block or program callable) *runs* times.

    Run *i* uses child stream *i* of ``SeedSequence(seed)``, so results
    are independent across runs yet bit-identical for any ``workers``
    setting.  ``workers=1`` (the default) evaluates serially; ``None``
    uses one process per host core; larger models with several runs gain
    near-linearly.  ``cache_dir`` enables the on-disk prediction cache;
    the last run can be traced for loss attribution (which bypasses the
    cache).

    ``vector_runs=True`` evaluates through the batched virtual machine
    (:mod:`repro.pevpm.vector`): all runs of a fixed-size chunk advance
    in one sweep/match pass with vectorised timing draws -- several times
    the throughput of per-run evaluation on one worker, and it composes
    with ``workers`` (chunks fan out over the pool) and the cache.
    Batch mode has its own seed-stream convention, so its times are
    statistically equivalent to -- not bit-identical with -- the per-run
    engine's; it is itself deterministic for a given seed.  A traced
    last run forces the per-run engine.

    ``compiled=True`` (the default) lowers the model to a static per-rank
    schedule once (:mod:`repro.pevpm.compile`) and executes the compiled
    form -- bit-identical times, with the per-op interpretation cost paid
    once instead of per run.  Programs whose structure is genuinely
    timing-dependent (a wildcard receive with racing senders) are
    detected at compile time and fall back to the generator interpreter
    unchanged.  ``compiled=False`` forces the interpreter everywhere.
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    group = RunGroup(
        model=model,
        nprocs=nprocs,
        timing=timing,
        seed=as_seed_sequence(seed),
        runs=runs,
        params=params,
        trace_last=trace_last,
        nic_serialisation=nic_serialisation,
        ppn=ppn,
        vector_runs=vector_runs,
        compiled=compiled,
    )
    return _evaluate_predictions([group], workers, cache_dir)[0]


def predict_speedups(
    model_factory: Callable[[int], object],
    proc_counts: list[int],
    timing_factory: Callable[[int], TimingModel],
    serial_time: float,
    runs: int = 5,
    seed: int | np.random.SeedSequence = 0,
    params: dict | None = None,
    ppn: int = 1,
    workers: int | None = 1,
    cache_dir=None,
    vector_runs: bool = False,
    compiled: bool = True,
) -> dict[int, float]:
    """Speedup curve across machine sizes (the Figure 6 x-axis).

    *model_factory(nprocs)* builds the model for each size (symbolic
    models just return the same Block); *timing_factory(nprocs)* builds
    the timing source (average-n x p models depend on nprocs).  Each
    machine size gets its own child seed stream, so the points are
    statistically independent; with ``workers`` > 1 the (size x run)
    grid evaluates in one shared pool.  ``vector_runs=True`` batches
    each size's runs through the vectorised engine.
    """
    root = as_seed_sequence(seed)
    children = run_seeds(root, len(proc_counts))
    groups = [
        RunGroup(
            model=model_factory(nprocs),
            nprocs=nprocs,
            timing=timing_factory(nprocs),
            seed=child,
            runs=runs,
            params=params,
            ppn=ppn,
            vector_runs=vector_runs,
            compiled=compiled,
        )
        for nprocs, child in zip(proc_counts, children)
    ]
    preds = _evaluate_predictions(groups, workers, cache_dir)
    return {
        nprocs: pred.speedup(serial_time)
        for nprocs, pred in zip(proc_counts, preds)
    }


def compare_timing_modes(
    model,
    nprocs: int,
    db,
    modes: list[tuple[str, str]] | None = None,
    runs: int = 5,
    seed: int | np.random.SeedSequence = 0,
    params: dict | None = None,
    nic_serialisation: str = "tx",
    ppn: int = 1,
    workers: int | None = 1,
    cache_dir=None,
    vector_runs: bool = False,
    compiled: bool = True,
) -> dict[str, Prediction]:
    """Run the paper's Figure 6 ablation at one machine size.

    *modes* is a list of (mode, source) pairs; defaults to the paper's
    four: distribution sampling vs. min/avg ping-pong vs. avg n x p.
    Every mode reuses the same seed streams (a paired comparison: the
    ablation differs only in timing source, not in random draws); with
    ``workers`` > 1 the (mode x run) grid shares one pool.
    ``vector_runs=True`` batches every mode's runs through the
    vectorised engine (the pairing is preserved: all modes share the
    batch seed streams too).
    """
    modes = modes or [
        ("distribution", "nxp"),
        ("average", "2x1"),
        ("minimum", "2x1"),
        ("average", "nxp"),
    ]
    root = as_seed_sequence(seed)
    groups = [
        RunGroup(
            model=model,
            nprocs=nprocs,
            timing=timing_from_db(db, mode=mode, source=source, nprocs=nprocs),
            seed=root,
            runs=runs,
            params=params,
            nic_serialisation=nic_serialisation,
            ppn=ppn,
            vector_runs=vector_runs,
            compiled=compiled,
        )
        for mode, source in modes
    ]
    preds = _evaluate_predictions(groups, workers, cache_dir)
    return {
        f"{mode}-{source}": pred
        for (mode, source), pred in zip(modes, preds)
    }
