"""High-level prediction API: Monte Carlo evaluation and speedups.

"The PEVPM approach is like a Monte Carlo simulation of performance, and
the number of [runs] can be chosen so that the statistical error in the
mean is negligibly small" (Section 6).  :func:`predict` evaluates a model
several times with independent random streams and aggregates; helpers
compute speedups (for Figure 6) and compare the paper's timing-source
variants side by side.

All entry points route through :mod:`repro.pevpm.parallel`: Monte Carlo
runs (and the ``proc_counts`` / timing-mode axes of the helpers) fan out
over a process pool when ``workers`` allows, with per-run
``SeedSequence`` streams keeping serial and parallel evaluation
bit-identical for the same seed.  Pass ``cache_dir`` to reuse finished
evaluations across calls and processes, and ``vector_runs=True`` to
evaluate whole chunks of runs in one pass on the batched virtual
machine (:mod:`repro.pevpm.vector`) -- the highest-throughput mode.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from ..stats import PrecisionTarget, achieved_rse, next_total
from ..stats.ci import ConfidenceInterval, mean_ci
from .machine import MachineResult
from .parallel import (
    PredictionCache,
    RunGroup,
    as_seed_sequence,
    evaluate_groups,
    run_seeds,
)
from .timing import TimingModel, timing_from_db
from .trace import LossReport

__all__ = [
    "Prediction",
    "AdaptiveResult",
    "build_prediction",
    "prediction_from_doc",
    "evaluate_with_precision",
    "precision_doc",
    "predict",
    "predict_speedups",
    "compare_timing_modes",
]


@dataclass
class Prediction:
    """Aggregated Monte Carlo prediction for one (model, nprocs, timing)."""

    nprocs: int
    timing_name: str
    times: list[float]  #: predicted completion time of each MC run
    results: list[MachineResult] = field(repr=False, default_factory=list)
    wall_time: float = 0.0  #: host seconds spent evaluating (the paper's cost metric)
    run_walls: list[float] = field(default_factory=list)  #: host seconds per MC run
    cached: bool = False  #: True when served from the on-disk cache
    #: adaptive-evaluation provenance (``None`` for fixed-``runs``):
    #: the precision target, per-round totals/RSE, and whether the
    #: stopping rule converged before the run cap.
    precision: dict | None = None

    @property
    def mean_time(self) -> float:
        return float(np.mean(self.times))

    @property
    def std_time(self) -> float:
        """Population standard deviation (ddof=0) of the run times --
        the spread of the Monte Carlo sample itself."""
        return float(np.std(self.times))

    @property
    def sample_std(self) -> float:
        """Sample standard deviation (ddof=1) -- the estimator of the
        underlying spread that inference (stderr, CIs, stopping rules)
        must use.  0.0 when fewer than two runs make it inestimable."""
        if len(self.times) <= 1:
            return 0.0
        return float(np.std(self.times, ddof=1))

    @property
    def stderr(self) -> float:
        """Standard error of the mean: sample std over sqrt(n).

        Uses ddof=1 (the population form underestimates it) and returns
        0.0 -- not NaN, not a ZeroDivisionError -- for empty or
        single-run predictions, where the error is simply inestimable.
        """
        n = len(self.times)
        if n <= 1:
            return 0.0
        return self.sample_std / n ** 0.5

    def ci(self, level: float = 0.95) -> ConfidenceInterval:
        """Normal-theory confidence interval on the mean prediction --
        what the sequential stopping rule tests against its target."""
        return mean_ci(self.times, level)

    @property
    def rse(self) -> float:
        """Relative standard error: stderr over |mean| (0.0 when
        inestimable or the mean is 0 with no spread)."""
        err = self.stderr
        if err == 0.0:
            return 0.0
        mean = self.mean_time
        return float("inf") if mean == 0.0 else err / abs(mean)

    @property
    def runs(self) -> int:
        return len(self.times)

    def speedup(self, serial_time: float) -> float:
        """Predicted speedup relative to a one-process time."""
        if serial_time <= 0:
            raise ValueError("serial_time must be positive")
        return serial_time / self.mean_time

    @property
    def simulated_per_wall(self) -> float:
        """Simulated processor-seconds evaluated per host wall second --
        the paper's '67.5 times its actual execution speed' metric
        (which counts all processors' time)."""
        if self.wall_time <= 0:
            return float("inf")
        total_proc_seconds = sum(self.times) * self.nprocs
        return total_proc_seconds / self.wall_time

    @property
    def mean_run_wall(self) -> float:
        """Mean host seconds per Monte Carlo run (0 when unknown)."""
        if not self.run_walls:
            return 0.0
        return float(np.mean(self.run_walls))

    @property
    def max_run_wall(self) -> float:
        """Slowest single run's host seconds -- the parallel critical path."""
        if not self.run_walls:
            return 0.0
        return float(np.max(self.run_walls))

    def loss_report(self) -> LossReport | None:
        """Attribution for the last run, when it was traced."""
        last = self.results[-1] if self.results else None
        if last is None or last.trace is None:
            return None
        return LossReport(last.trace, last.elapsed, self.nprocs)


def build_prediction(group: RunGroup, outcomes, wall: float) -> Prediction:
    """Aggregate one group's :class:`~repro.pevpm.parallel.RunOutcome`
    list into a :class:`Prediction` -- the entry point shared by
    :func:`predict` and the prediction service's micro-batcher (which
    evaluates many groups per :func:`~repro.pevpm.parallel.evaluate_groups`
    call and builds each request's prediction separately)."""
    return Prediction(
        nprocs=group.nprocs,
        timing_name=group.timing.name,
        times=[o.elapsed for o in outcomes],
        results=[o.result for o in outcomes],
        wall_time=wall,
        run_walls=[o.wall for o in outcomes],
    )


def prediction_from_doc(doc: dict) -> Prediction:
    """Rehydrate a cached prediction document (the JSON form stored by
    :class:`~repro.pevpm.parallel.PredictionCache` and the service's
    in-memory tier) into a :class:`Prediction`."""
    return Prediction(
        nprocs=int(doc.get("nprocs", 0)),
        timing_name=str(doc.get("timing", "")),
        times=[float(t) for t in doc["times"]],
        results=[],
        wall_time=0.0,
        run_walls=[float(w) for w in doc.get("run_walls", [])],
        cached=True,
    )


def prediction_doc(group: RunGroup, pred: Prediction) -> dict:
    """The JSON-able cache document for one finished evaluation
    (inverse of :func:`prediction_from_doc`)."""
    return {
        "times": pred.times,
        "run_walls": pred.run_walls,
        "nprocs": group.nprocs,
        "timing": group.timing.name,
    }


def _evaluate_predictions(
    groups: list[RunGroup],
    workers: int | None,
    cache_dir,
) -> list[Prediction]:
    """Serve each group from the cache when possible; evaluate the rest
    (misses of *all* groups share one pool) and persist their results."""
    cache = PredictionCache(cache_dir) if cache_dir is not None else None
    preds: list[Prediction | None] = [None] * len(groups)
    keys: list[str | None] = [None] * len(groups)
    misses: list[int] = []
    for i, group in enumerate(groups):
        # Traced runs carry MachineResult/TraceRecorder state the JSON
        # cache does not hold -- always evaluate those live.
        if cache is None or group.trace_last:
            misses.append(i)
            continue
        key = keys[i] = cache.group_key(group)
        doc = cache.get(key)
        if doc is not None:
            preds[i] = prediction_from_doc(doc)
        else:
            misses.append(i)
    if misses:
        t0 = _time.perf_counter()
        outcomes = evaluate_groups([groups[i] for i in misses], workers=workers)
        wall = _time.perf_counter() - t0
        for i, group_outcomes in zip(misses, outcomes):
            # Attribute the shared pool's wall time to each group by its
            # own runs' host cost (exact when serial; proportional under
            # the pool).
            own = sum(o.wall for o in group_outcomes)
            total = sum(o.wall for per in outcomes for o in per) or 1.0
            preds[i] = build_prediction(groups[i], group_outcomes, wall * own / total)
            if cache is not None and keys[i] is not None:
                cache.put(keys[i], prediction_doc(groups[i], preds[i]))
    return preds  # type: ignore[return-value]


# -- adaptive (precision-targeted) evaluation ---------------------------------
@dataclass
class AdaptiveResult:
    """One group's adaptive evaluation: outcomes plus the decision trail."""

    outcomes: list  #: run-ordered RunOutcomes, length = runs spent
    rounds: list[dict]  #: per-round {"runs", "added", "rse", "wall"}
    converged: bool  #: target met (False: stopped at the run cap)
    wall: float  #: host seconds attributed to this group

    @property
    def runs(self) -> int:
        return len(self.outcomes)


class _AdaptiveState:
    """Progress of one group through the sequential stopping rule."""

    def __init__(self, group: RunGroup, target: PrecisionTarget):
        if group.run_offset:
            raise ValueError("adaptive groups must start at run_offset 0")
        if group.trace_last:
            raise ValueError(
                "trace_last is incompatible with adaptive evaluation "
                "(the last run is not known until the rule stops)"
            )
        self.group = group
        self.target = target
        #: chunk alignment for vectorised groups (None: scalar engine)
        self.batch = group.vector_batch if group.vector_runs else None
        self.outcomes: list = []
        self.rounds: list[dict] = []
        self.done = 0
        self.wall = 0.0
        self.converged = False

    def next_increment(self) -> RunGroup | None:
        """The next refinement slice, or ``None`` when finished."""
        if self.converged or self.done >= self.target.max_runs:
            return None
        total = next_total(self.done, self.target, self.batch)
        if total <= self.done:
            return None
        return replace(self.group, runs=total - self.done, run_offset=self.done)

    def absorb(self, increment: RunGroup, outcomes, wall_share: float) -> None:
        self.outcomes.extend(outcomes)
        self.done += increment.runs
        self.wall += wall_share
        times = [o.elapsed for o in self.outcomes]
        rse = achieved_rse(times, self.target.level)
        self.converged = self.target.satisfied(times)
        self.rounds.append({
            "runs": self.done,
            "added": increment.runs,
            "rse": None if rse == float("inf") else rse,
            "wall": wall_share,
        })

    def result(self) -> AdaptiveResult:
        return AdaptiveResult(
            outcomes=self.outcomes,
            rounds=self.rounds,
            converged=self.converged,
            wall=self.wall,
        )


def evaluate_with_precision(
    fixed_groups: list[RunGroup],
    adaptive_pairs: list[tuple[RunGroup, PrecisionTarget]],
    workers: int | None = None,
    on_rebuild: Callable[[int], None] | None = None,
) -> tuple[list[list], list[float], list[AdaptiveResult]]:
    """Round-based evaluation mixing fixed and adaptive groups.

    Each round issues **one** :func:`evaluate_groups` call covering every
    adaptive group's next increment (fixed groups join the first round),
    so concurrent refinements share the pool and the micro-batcher's
    coalescing just as fixed batches do.  Increments extend each group's
    seed streams at absolute run indices (``run_offset``), and for
    vectorised groups every scheduled total is chunk-aligned, so a group
    stopping at N runs has drawn exactly what a one-shot ``runs=N``
    evaluation would -- bit-identical times (the Hypothesis property
    ``tests/pevpm/test_adaptive_predict.py`` pins).

    Returns ``(fixed_outcomes, fixed_walls, adaptive_results)``; wall
    time of each round's shared pool is attributed proportionally to the
    host cost of each group's own runs, as in fixed evaluation.
    """
    states = [_AdaptiveState(g, t) for g, t in adaptive_pairs]
    fixed_out: list[list | None] = [None] * len(fixed_groups)
    fixed_walls = [0.0] * len(fixed_groups)
    first = True
    while True:
        round_groups: list[RunGroup] = []
        owners: list[tuple[str, int]] = []
        if first:
            for i, g in enumerate(fixed_groups):
                round_groups.append(g)
                owners.append(("fixed", i))
        for i, st in enumerate(states):
            inc = st.next_increment()
            if inc is not None:
                round_groups.append(inc)
                owners.append(("adaptive", i))
        if not round_groups:
            break
        first = False
        t0 = _time.perf_counter()
        per = evaluate_groups(round_groups, workers=workers, on_rebuild=on_rebuild)
        wall = _time.perf_counter() - t0
        total_w = sum(o.wall for outs in per for o in outs) or 1.0
        for owner, g, outs in zip(owners, round_groups, per):
            share = wall * sum(o.wall for o in outs) / total_w
            if owner[0] == "fixed":
                fixed_out[owner[1]] = outs
                fixed_walls[owner[1]] = share
            else:
                states[owner[1]].absorb(g, outs, share)
    return fixed_out, fixed_walls, [st.result() for st in states]  # type: ignore[return-value]


def precision_doc(target: PrecisionTarget, result: AdaptiveResult) -> dict:
    """The JSON-able adaptive-provenance block riding on predictions."""
    return {
        "target": target.to_doc(),
        "converged": result.converged,
        "achieved_rse": result.rounds[-1]["rse"] if result.rounds else None,
        "rounds": result.rounds,
    }


def _adaptive_key(cache: PredictionCache, group: RunGroup, target: PrecisionTarget) -> str:
    """Pointer-entry key of one adaptive request (the run count is the
    rule's output, so the target replaces ``runs`` in the fingerprint)."""
    return cache.key(
        group.model,
        group.params,
        group.nprocs,
        group.timing.fingerprint(),
        group.seed,
        0,
        group.nic_serialisation,
        group.ppn,
        vector_runs=group.vector_runs,
        vector_batch=group.vector_batch,
        compiled=group.compiled,
        precision=target.to_doc(),
    )


def _evaluate_adaptive_predictions(
    groups: list[RunGroup],
    targets: list[PrecisionTarget],
    workers: int | None,
    cache_dir,
) -> list[Prediction]:
    """Adaptive counterpart of :func:`_evaluate_predictions`.

    Cache story: the full result document is stored under the
    **fixed-runs key of the achieved total** (so a later ``runs=N``
    request hits it -- adaptive and fixed answers for the same content
    are bit-identical by construction), and a small *pointer* document
    is stored under the adaptive key mapping target -> achieved run
    count, so a repeated adaptive request replays the lookup without
    re-running the stopping rule.
    """
    cache = PredictionCache(cache_dir) if cache_dir is not None else None
    preds: list[Prediction | None] = [None] * len(groups)
    miss_pairs: list[tuple[RunGroup, PrecisionTarget]] = []
    miss_idx: list[int] = []
    pointer_keys: list[str | None] = [None] * len(groups)
    for i, (group, target) in enumerate(zip(groups, targets)):
        if cache is None:
            miss_pairs.append((group, target))
            miss_idx.append(i)
            continue
        pkey = pointer_keys[i] = _adaptive_key(cache, group, target)
        pointer = cache.get(pkey)
        if pointer is not None and isinstance(pointer.get("achieved_runs"), int):
            achieved = pointer["achieved_runs"]
            doc = cache.get(cache.group_key(replace(group, runs=achieved)))
            if doc is not None:
                pred = prediction_from_doc(doc)
                pred.precision = pointer.get("precision")
                preds[i] = pred
                continue
        miss_pairs.append((group, target))
        miss_idx.append(i)
    if miss_pairs:
        _, _, results = evaluate_with_precision(
            [], miss_pairs, workers=workers
        )
        for i, (group, target), result in zip(miss_idx, miss_pairs, results):
            finished = replace(group, runs=result.runs)
            pred = build_prediction(finished, result.outcomes, result.wall)
            pred.precision = precision_doc(target, result)
            preds[i] = pred
            if cache is not None:
                cache.put(
                    cache.group_key(finished), prediction_doc(finished, pred)
                )
                cache.put(pointer_keys[i], {
                    "kind": "adaptive",
                    "achieved_runs": result.runs,
                    "precision": pred.precision,
                })
    return preds  # type: ignore[return-value]


def _resolve_precision(
    precision: PrecisionTarget | None,
    target_rse: float | None,
    min_runs: int,
    max_runs: int,
) -> PrecisionTarget | None:
    """Fold the convenience ``target_rse=`` form into a PrecisionTarget."""
    if target_rse is None:
        return precision
    if precision is not None:
        raise ValueError("give either precision or target_rse, not both")
    return PrecisionTarget(rse=target_rse, min_runs=min_runs, max_runs=max_runs)


def _adaptive_batch(precision: PrecisionTarget) -> int:
    """Default chunk size for adaptive vectorised groups: the first
    scheduled total, so the refinement increment *is* one chunk and a
    loose target can stop after ``min_runs`` instead of a full default
    chunk of 64."""
    return precision.min_runs


def predict(
    model,
    nprocs: int,
    timing: TimingModel,
    runs: int = 5,
    seed: int | np.random.SeedSequence = 0,
    params: dict | None = None,
    trace_last: bool = False,
    nic_serialisation: str = "tx",
    ppn: int = 1,
    workers: int | None = 1,
    cache_dir=None,
    vector_runs: bool = False,
    compiled: bool = True,
    precision: PrecisionTarget | None = None,
    target_rse: float | None = None,
    min_runs: int = 4,
    max_runs: int = 256,
) -> Prediction:
    """Evaluate *model* (directive Block or program callable) *runs* times.

    Run *i* uses child stream *i* of ``SeedSequence(seed)``, so results
    are independent across runs yet bit-identical for any ``workers``
    setting.  ``workers=1`` (the default) evaluates serially; ``None``
    uses one process per host core; larger models with several runs gain
    near-linearly.  ``cache_dir`` enables the on-disk prediction cache;
    the last run can be traced for loss attribution (which bypasses the
    cache).

    ``vector_runs=True`` evaluates through the batched virtual machine
    (:mod:`repro.pevpm.vector`): all runs of a fixed-size chunk advance
    in one sweep/match pass with vectorised timing draws -- several times
    the throughput of per-run evaluation on one worker, and it composes
    with ``workers`` (chunks fan out over the pool) and the cache.
    Batch mode has its own seed-stream convention, so its times are
    statistically equivalent to -- not bit-identical with -- the per-run
    engine's; it is itself deterministic for a given seed.  A traced
    last run forces the per-run engine.

    ``compiled=True`` (the default) lowers the model to a static per-rank
    schedule once (:mod:`repro.pevpm.compile`) and executes the compiled
    form -- bit-identical times, with the per-op interpretation cost paid
    once instead of per run.  Programs whose structure is genuinely
    timing-dependent (a wildcard receive with racing senders) are
    detected at compile time and fall back to the generator interpreter
    unchanged.  ``compiled=False`` forces the interpreter everywhere.

    **Adaptive mode**: pass ``precision=PrecisionTarget(...)`` (or the
    shorthand ``target_rse=0.01``) and the run count is decided by the
    sequential stopping rule instead of ``runs`` -- evaluation proceeds
    in doubling increments until the mean's CI half-width meets the
    target or ``max_runs`` is reached.  Increments continue each run's
    seed stream at its absolute index, so an adaptive evaluation that
    stops at N runs is bit-identical to ``runs=N`` with the same seed.
    The resulting :class:`Prediction` carries its decision trail in
    ``.precision``.  Adaptive vectorised groups default their chunk size
    to ``min_runs`` (a loose target can then stop after the first chunk
    rather than a full default chunk).  Incompatible with ``trace_last``
    (the last run is unknown until the rule stops).
    """
    target = _resolve_precision(precision, target_rse, min_runs, max_runs)
    if target is not None and trace_last:
        raise ValueError("trace_last is incompatible with adaptive evaluation")
    if target is None and runs < 1:
        raise ValueError("runs must be >= 1")
    group = RunGroup(
        model=model,
        nprocs=nprocs,
        timing=timing,
        seed=as_seed_sequence(seed),
        runs=runs,
        params=params,
        trace_last=trace_last,
        nic_serialisation=nic_serialisation,
        ppn=ppn,
        vector_runs=vector_runs,
        compiled=compiled,
    )
    if target is not None:
        if vector_runs:
            group = replace(group, vector_batch=_adaptive_batch(target))
        return _evaluate_adaptive_predictions(
            [group], [target], workers, cache_dir
        )[0]
    return _evaluate_predictions([group], workers, cache_dir)[0]


def predict_speedups(
    model_factory: Callable[[int], object],
    proc_counts: list[int],
    timing_factory: Callable[[int], TimingModel],
    serial_time: float,
    runs: int = 5,
    seed: int | np.random.SeedSequence = 0,
    params: dict | None = None,
    ppn: int = 1,
    workers: int | None = 1,
    cache_dir=None,
    vector_runs: bool = False,
    compiled: bool = True,
    precision: PrecisionTarget | None = None,
    target_rse: float | None = None,
    min_runs: int = 4,
    max_runs: int = 256,
) -> dict[int, float]:
    """Speedup curve across machine sizes (the Figure 6 x-axis).

    *model_factory(nprocs)* builds the model for each size (symbolic
    models just return the same Block); *timing_factory(nprocs)* builds
    the timing source (average-n x p models depend on nprocs).  Each
    machine size gets its own child seed stream, so the points are
    statistically independent; with ``workers`` > 1 the (size x run)
    grid evaluates in one shared pool.  ``vector_runs=True`` batches
    each size's runs through the vectorised engine.

    With ``precision``/``target_rse`` set, every size stops at its own
    adaptive total: small machines (low variance) spend few runs, large
    contended ones spend more -- the curve reaches uniform *relative*
    precision instead of uniform spend.
    """
    target = _resolve_precision(precision, target_rse, min_runs, max_runs)
    root = as_seed_sequence(seed)
    children = run_seeds(root, len(proc_counts))
    batch_kw = (
        {"vector_batch": _adaptive_batch(target)}
        if target is not None and vector_runs
        else {}
    )
    groups = [
        RunGroup(
            model=model_factory(nprocs),
            nprocs=nprocs,
            timing=timing_factory(nprocs),
            seed=child,
            runs=runs,
            params=params,
            ppn=ppn,
            vector_runs=vector_runs,
            compiled=compiled,
            **batch_kw,
        )
        for nprocs, child in zip(proc_counts, children)
    ]
    if target is not None:
        preds = _evaluate_adaptive_predictions(
            groups, [target] * len(groups), workers, cache_dir
        )
    else:
        preds = _evaluate_predictions(groups, workers, cache_dir)
    return {
        nprocs: pred.speedup(serial_time)
        for nprocs, pred in zip(proc_counts, preds)
    }


def compare_timing_modes(
    model,
    nprocs: int,
    db,
    modes: list[tuple[str, str]] | None = None,
    runs: int = 5,
    seed: int | np.random.SeedSequence = 0,
    params: dict | None = None,
    nic_serialisation: str = "tx",
    ppn: int = 1,
    workers: int | None = 1,
    cache_dir=None,
    vector_runs: bool = False,
    compiled: bool = True,
    precision: PrecisionTarget | None = None,
    target_rse: float | None = None,
    min_runs: int = 4,
    max_runs: int = 256,
) -> dict[str, Prediction]:
    """Run the paper's Figure 6 ablation at one machine size.

    *modes* is a list of (mode, source) pairs; defaults to the paper's
    four: distribution sampling vs. min/avg ping-pong vs. avg n x p.
    Every mode reuses the same seed streams (a paired comparison: the
    ablation differs only in timing source, not in random draws); with
    ``workers`` > 1 the (mode x run) grid shares one pool.
    ``vector_runs=True`` batches every mode's runs through the
    vectorised engine (the pairing is preserved: all modes share the
    batch seed streams too).

    ``precision``/``target_rse`` makes each mode stop at its own
    adaptive total -- the deterministic modes (min/avg ping-pong draw no
    randomness per op) converge immediately at ``min_runs`` while the
    distribution-sampling mode spends what its variance demands.
    """
    target = _resolve_precision(precision, target_rse, min_runs, max_runs)
    modes = modes or [
        ("distribution", "nxp"),
        ("average", "2x1"),
        ("minimum", "2x1"),
        ("average", "nxp"),
    ]
    root = as_seed_sequence(seed)
    batch_kw = (
        {"vector_batch": _adaptive_batch(target)}
        if target is not None and vector_runs
        else {}
    )
    groups = [
        RunGroup(
            model=model,
            nprocs=nprocs,
            timing=timing_from_db(db, mode=mode, source=source, nprocs=nprocs),
            seed=root,
            runs=runs,
            params=params,
            nic_serialisation=nic_serialisation,
            ppn=ppn,
            vector_runs=vector_runs,
            compiled=compiled,
            **batch_kw,
        )
        for mode, source in modes
    ]
    if target is not None:
        preds = _evaluate_adaptive_predictions(
            groups, [target] * len(groups), workers, cache_dir
        )
    else:
        preds = _evaluate_predictions(groups, workers, cache_dir)
    return {
        f"{mode}-{source}": pred
        for (mode, source), pred in zip(modes, preds)
    }
