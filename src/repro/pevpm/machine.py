"""The Performance Evaluating Virtual Parallel Machine.

This is the paper's core algorithm (Section 5): an execution-driven
simulation that evolves a message-passing program in *virtual time* by
alternating two phases:

* **sweep** -- simulate every runnable process forward until it reaches a
  *decision point* (a receive whose completion depends on dynamic
  information) or terminates.  Serial segments advance the process's
  virtual clock; sends charge the sender its local send cost and add the
  message's metadata to the contention scoreboard.

* **match** -- for every process blocked at a receive, determine the
  arrival time of the candidate message by Monte Carlo sampling from the
  timing model, conditioned on the message size and the *current
  scoreboard population* (the contention level); complete the receive at
  ``max(post time, arrival)``, remove the message from the scoreboard and
  make the process runnable again.

Evaluation "operates as a series of interleaved sweep/match phases until
no more decision points are encountered".  If a match phase cannot
unblock anything while processes remain, the program is deadlocked -- the
paper notes PEVPM "can also automatically discover program deadlock" --
and the machine raises :class:`ModelDeadlock` with the blocked state.

This module holds the *per-run* engine: one Monte Carlo run per
evaluation.  :mod:`repro.pevpm.vector` implements the batched variant,
which advances all runs of a Monte Carlo batch through one sweep/match
pass with per-run clocks as ``(R,)`` vectors; both share this module's
:class:`ProcContext` operation vocabulary and :class:`MachineResult`.

Model programs are generators over primitive operations, produced either
by interpreting directive IR (:mod:`repro.pevpm.interpreter`) or written
directly against the :class:`ProcContext` API (the "driver program" form
the paper hand-translated its directives into)::

    def program(ctx):
        for _ in range(1000):
            if ctx.procnum > 0:
                yield ctx.send(ctx.procnum - 1, 1024)
                yield ctx.recv(ctx.procnum - 1)
            ...
            yield ctx.serial(3.24e-3 / ctx.numprocs)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter as _perf_counter
from typing import Any, Callable, Generator

import numpy as np

from typing import NamedTuple

from .scoreboard import Scoreboard, ScoreboardEntry
from .timing import TimingModel
from .trace import TraceRecorder

__all__ = [
    "ANY_SOURCE",
    "MatchInfo",
    "ModelDeadlock",
    "ProcContext",
    "MachineResult",
    "VirtualMachine",
]


class MatchInfo(NamedTuple):
    """Delivered to a model program when its receive completes:
    ``info = yield ctx.recv(...)``.  Irregular programs (the task farm)
    use it to react to whichever message matched."""

    src: int
    size: int
    payload: object = None

ANY_SOURCE = -1


def validate_machine_config(nprocs: int, ppn: int, nic_serialisation: str) -> None:
    """Shared constructor validation for the scalar and batched machines."""
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    if ppn < 1:
        raise ValueError("ppn must be >= 1")
    if nic_serialisation not in ("off", "tx", "txrx"):
        raise ValueError("nic_serialisation must be 'off', 'tx' or 'txrx'")


class ModelDeadlock(RuntimeError):
    """The modelled program deadlocked.

    Carries which processes were blocked, on what, and the orphaned
    messages still on the scoreboard.  When the deadlock is discovered
    at compile time, *sites* additionally names the directive (op)
    index each blocked rank stalled at in its schedule, so the message
    points straight at the offending receive.
    """

    def __init__(
        self,
        blocked: dict[int, int],
        orphans: list[ScoreboardEntry],
        sites: dict[int, int] | None = None,
    ):
        sites = sites or {}
        detail = ", ".join(
            f"proc {p} waiting on "
            + ("ANY" if src == ANY_SOURCE else f"proc {src}")
            + (f" at op {sites[p]}" if p in sites else "")
            for p, src in sorted(blocked.items())
        )
        super().__init__(
            f"model deadlock: {detail}; {len(orphans)} message(s) in flight"
        )
        self.blocked = blocked
        self.orphans = orphans
        #: per-proc op index of the blocking receive (compile-time only)
        self.sites = sites


class ProcContext:
    """Per-process API handed to model programs.

    The yielded values are plain tuples (kept cheap: a Jacobi model emits
    hundreds of thousands of them); programs should build them through
    these helpers rather than by hand.
    """

    __slots__ = ("procnum", "numprocs", "params")

    def __init__(self, procnum: int, numprocs: int, params: dict | None = None):
        self.procnum = procnum
        self.numprocs = numprocs
        self.params = params or {}

    def serial(self, seconds: float, label: str = "serial"):
        """A serial computation segment of *seconds* virtual time."""
        if seconds < 0:
            raise ValueError("serial time must be non-negative")
        return ("serial", seconds, label)

    def send(self, dst: int, size: int, label: str = "send", payload=None):
        """Send *size* bytes to process *dst* (MPI_Send/MPI_Isend; both are
        modelled by the sender's measured local occupancy).

        *payload* rides along to the matching receive's
        :class:`MatchInfo` -- it carries model-level information (e.g. a
        task cost), not simulated bytes; *size* alone determines timing.
        """
        if not 0 <= dst < self.numprocs:
            raise ValueError(f"send destination {dst} out of range")
        if dst == self.procnum:
            raise ValueError("model processes do not send to themselves")
        if size < 0:
            raise ValueError("message size must be non-negative")
        return ("send", dst, size, label, payload)

    def recv(self, src: int = ANY_SOURCE, label: str = "recv"):
        """Receive from *src* (or any process).  This is a decision point."""
        if src != ANY_SOURCE and not 0 <= src < self.numprocs:
            raise ValueError(f"recv source {src} out of range")
        return ("recv", src, label)


@dataclass
class _Proc:
    ctx: ProcContext
    gen: Generator | None
    #: compiled schedule (op list) and instruction pointer -- used instead
    #: of the generator when running a CompiledProgram
    ops: list | None = None
    ip: int = 0
    vtime: float = 0.0
    resume_value: Any = None  #: delivered to the generator at next resume
    blocked_src: int | None = None  #: None = runnable; else recv source pattern
    blocked_label: str = ""
    block_start: float = 0.0
    done: bool = False
    # accounting
    compute_time: float = 0.0
    send_time: float = 0.0
    recv_wait_time: float = 0.0
    sends: int = 0
    recvs: int = 0


@dataclass
class MachineResult:
    """Outcome of one virtual-machine evaluation (one Monte Carlo run)."""

    elapsed: float  #: virtual completion time of the slowest process
    finish_times: list[float]
    compute_time: list[float]
    send_time: list[float]
    recv_wait_time: list[float]
    messages: int  #: total messages modelled
    peak_contention: int  #: scoreboard high-water mark
    sweeps: int  #: number of sweep/match rounds
    orphans: list[ScoreboardEntry] = field(default_factory=list)
    trace: Any = None  #: TraceRecorder when tracing was enabled

    @property
    def nprocs(self) -> int:
        return len(self.finish_times)

    def efficiency(self) -> list[float]:
        """Per-process fraction of time spent computing (vs. waiting)."""
        out = []
        for i, finish in enumerate(self.finish_times):
            out.append(self.compute_time[i] / finish if finish > 0 else 1.0)
        return out


class VirtualMachine:
    """Evaluate a model program on a virtual machine of *nprocs* processes.

    *seed* may be an integer or a :class:`numpy.random.SeedSequence`
    (the prediction engine hands each Monte Carlo run its own spawned
    child stream so serial and parallel evaluation draw identically).
    """

    def __init__(
        self,
        nprocs: int,
        timing: TimingModel,
        seed: int | np.random.SeedSequence = 0,
        params: dict | None = None,
        trace: bool = False,
        max_sweeps: int = 10_000_000,
        nic_serialisation: str = "tx",
        ppn: int = 1,
        profiler=None,
    ):
        validate_machine_config(nprocs, ppn, nic_serialisation)
        self.nprocs = nprocs
        self.timing = timing
        self.params = params or {}
        self.rng = np.random.default_rng(seed)
        self.trace = TraceRecorder() if trace else None
        #: optional :class:`repro.obs.PhaseProfiler` accumulating host
        #: seconds into sweep/match/sample buckets.  Wall-clock
        #: observation only -- profiling never touches the seeded RNG,
        #: so a profiled run stays bit-identical to an unprofiled one.
        self.profiler = profiler
        self.max_sweeps = max_sweeps
        #: how much per-NIC occupancy the VPM tracks: 'tx' (default)
        #: serialises back-to-back sends from one process; 'txrx' also
        #: serialises arrivals at one receiver; 'off' disables both (an
        #: ablation knob -- see benchmarks/bench_ablation_nic.py).
        self.nic_serialisation = nic_serialisation
        #: processes per node, for intra- vs inter-node message handling
        #: (block placement, matching the MPI runtime's).
        self.ppn = ppn

    # -- the sweep/match algorithm ------------------------------------------------
    def run(self, program: Callable[[ProcContext], Generator]) -> MachineResult:
        # A CompiledProgram executes through the cursor sweep below: the
        # same ops in the same order as its generator form, so the two
        # paths are bit-identical (see repro.pevpm.compile).  Divergent
        # programs fall back to their generator form.
        from .compile import CompiledProgram  # function-level: avoids cycle

        schedule = None
        if isinstance(program, CompiledProgram):
            if program.nprocs != self.nprocs:
                raise ValueError(
                    f"program compiled for {program.nprocs} processes, "
                    f"machine has {self.nprocs}"
                )
            if program.divergent:
                program = program.fallback
            else:
                schedule = program.schedule(self.ppn)
        self.timing.reset()
        scoreboard = Scoreboard()
        arrivals: dict[int, float] = {}  # sampled arrival per message id
        last_arrival: dict[tuple[int, int], float] = {}  # pair FIFO on arrivals
        # Per-process NIC occupancy, the "messages currently being passed
        # through the network" state the paper says the VPM keeps track of:
        # a sender's next message cannot enter the wire before the previous
        # one has drained, and arrivals at one receiver serialise likewise.
        tx_free: dict[int, float] = {}
        rx_free: dict[int, float] = {}
        procs: list[_Proc] = []
        for p in range(self.nprocs):
            ctx = ProcContext(p, self.nprocs, self.params)
            if schedule is None:
                procs.append(_Proc(ctx=ctx, gen=program(ctx)))
            else:
                procs.append(_Proc(ctx=ctx, gen=None, ops=schedule[p]))

        rng = self.rng
        timing = self.timing
        trace = self.trace
        prof = self.profiler
        sweeps = 0

        def sweep_compiled(proc: _Proc) -> None:
            """Advance one process to its next decision point by walking
            its compiled schedule -- op-for-op identical to the generator
            sweep, minus the generator resume and AST dispatch."""
            ops = proc.ops
            n = len(ops)
            ip = proc.ip
            vtime = proc.vtime
            while ip < n:
                op = ops[ip]
                ip += 1
                kind = op[0]
                if kind == "serial":
                    seconds = op[1]
                    vtime += seconds
                    proc.compute_time += seconds
                    if trace is not None:
                        trace.record(proc.ctx.procnum, "serial", op[2],
                                     vtime - seconds, vtime)
                elif kind == "send":
                    _k, dst, size, label, payload, intra = op
                    depart = vtime
                    if prof is None:
                        cost = timing.local_send_time(
                            size, scoreboard.contention, rng, intra=intra
                        )
                    else:
                        t0 = _perf_counter()
                        cost = timing.local_send_time(
                            size, scoreboard.contention, rng, intra=intra
                        )
                        prof.add("sample", _perf_counter() - t0)
                    vtime += cost
                    proc.send_time += cost
                    proc.sends += 1
                    scoreboard.add(
                        proc.ctx.procnum, dst, size, depart,
                        intra=intra, payload=payload,
                    )
                    if trace is not None:
                        trace.record(proc.ctx.procnum, "send", label,
                                     depart, vtime)
                else:  # recv: the decision point
                    proc.blocked_src = op[1]
                    proc.blocked_label = op[2]
                    proc.vtime = vtime
                    proc.block_start = vtime
                    proc.ip = ip
                    return
            proc.vtime = vtime
            proc.ip = ip
            proc.done = True

        def sweep_generator(proc: _Proc) -> None:
            """Advance one process to its next decision point."""
            while True:
                try:
                    op = proc.gen.send(proc.resume_value)
                except StopIteration:
                    proc.done = True
                    return
                finally:
                    proc.resume_value = None
                kind = op[0]
                if kind == "serial":
                    _k, seconds, label = op
                    proc.vtime += seconds
                    proc.compute_time += seconds
                    if trace is not None:
                        trace.record(proc.ctx.procnum, "serial", label,
                                     proc.vtime - seconds, proc.vtime)
                elif kind == "send":
                    _k, dst, size, label, payload = op
                    me = proc.ctx.procnum
                    intra = me // self.ppn == dst // self.ppn
                    depart = proc.vtime
                    if prof is None:
                        cost = timing.local_send_time(
                            size, scoreboard.contention, rng, intra=intra
                        )
                    else:
                        t0 = _perf_counter()
                        cost = timing.local_send_time(
                            size, scoreboard.contention, rng, intra=intra
                        )
                        prof.add("sample", _perf_counter() - t0)
                    proc.vtime += cost
                    proc.send_time += cost
                    proc.sends += 1
                    scoreboard.add(
                        me, dst, size, depart, intra=intra, payload=payload
                    )
                    if trace is not None:
                        trace.record(proc.ctx.procnum, "send", label, depart, proc.vtime)
                elif kind == "recv":
                    _k, src, label = op
                    proc.blocked_src = src
                    proc.blocked_label = label
                    proc.block_start = proc.vtime
                    return
                else:
                    raise ValueError(f"unknown model operation {op!r}")

        sweep = sweep_generator if schedule is None else sweep_compiled

        def candidate(proc: _Proc) -> ScoreboardEntry | None:
            """The message a blocked process would match, if any."""
            dst = proc.ctx.procnum
            if proc.blocked_src == ANY_SOURCE:
                # Per-source FIFO: only each source's oldest message is
                # eligible; pick the one with the earliest (sampled) arrival.
                eligible: dict[int, ScoreboardEntry] = {}
                for e in scoreboard.any_for_dst(dst):
                    if e.src not in eligible:
                        eligible[e.src] = e
                if not eligible:
                    return None
                return min(
                    eligible.values(), key=lambda e: (arrival_of(e), e.msg_id)
                )
            return scoreboard.oldest_for(proc.blocked_src, dst)

        def arrival_of(entry: ScoreboardEntry) -> float:
            """Sample (once) the arrival time of a message, conditioned on
            the scoreboard population at sampling time and on the NIC
            occupancy of its endpoints."""
            t = arrivals.get(entry.msg_id)
            if t is None:
                if prof is None:
                    oneway = timing.one_way_time(
                        entry.size, scoreboard.contention, rng, intra=entry.intra
                    )
                else:
                    t0 = _perf_counter()
                    oneway = timing.one_way_time(
                        entry.size, scoreboard.contention, rng, intra=entry.intra
                    )
                    prof.add("sample", _perf_counter() - t0)
                if entry.intra or self.nic_serialisation == "off":
                    # Shared-memory messages never touch the NIC.
                    t = entry.depart_time + oneway
                else:
                    gap = timing.serialisation_gap(entry.size)
                    # NICs belong to *nodes*: processes sharing a node
                    # share its transmit and receive pipes.
                    src_node = entry.src // self.ppn
                    dst_node = entry.dst // self.ppn
                    # The sender's NIC must have drained the previous
                    # message before this one can enter the wire.
                    inject = max(entry.depart_time, tx_free.get(src_node, 0.0))
                    tx_free[src_node] = inject + gap
                    t = inject + oneway
                    if self.nic_serialisation == "txrx":
                        # Arrivals at one receiver serialise through its NIC.
                        floor = rx_free.get(dst_node, 0.0)
                        if t < floor + gap:
                            t = floor + gap
                        rx_free[dst_node] = t
                key = (entry.src, entry.dst)
                # One TCP stream per pair: arrivals cannot overtake.
                prev = last_arrival.get(key, 0.0)
                if t < prev:
                    t = prev
                last_arrival[key] = t
                arrivals[entry.msg_id] = t
            return t

        # Interleaved sweep/match until every process terminates.
        runnable = list(procs)
        while True:
            sweeps += 1
            if sweeps > self.max_sweeps:
                raise RuntimeError(
                    f"model exceeded {self.max_sweeps} sweep/match rounds"
                )
            if prof is None:
                for proc in runnable:
                    sweep(proc)
            else:
                mark = prof.mark()
                t0 = _perf_counter()
                for proc in runnable:
                    sweep(proc)
                # Sample draws inside the sweep are already counted;
                # exclusive() keeps the buckets disjoint.
                prof.exclusive("sweep", _perf_counter() - t0, mark)
            alive = [p for p in procs if not p.done]
            if not alive:
                break
            if prof is not None:
                match_mark = prof.mark()
                match_t0 = _perf_counter()

            # Match phase: complete what we can, in deterministic order of
            # (block time, procnum).
            blocked = sorted(
                (p for p in alive if p.blocked_src is not None),
                key=lambda p: (p.block_start, p.ctx.procnum),
            )
            runnable = []
            for proc in blocked:
                entry = candidate(proc)
                if entry is None:
                    continue
                t_arr = arrival_of(entry)
                completion = max(proc.vtime, t_arr)
                wait = completion - proc.block_start
                proc.recv_wait_time += wait
                proc.recvs += 1
                if trace is not None:
                    trace.record(
                        proc.ctx.procnum, "recv", proc.blocked_label,
                        proc.block_start, completion,
                    )
                proc.vtime = completion
                proc.blocked_src = None
                # Model programs may capture the match:
                #   src, size = yield ctx.recv(...)
                # which is what lets irregular (task-farm style) masters
                # react to whichever worker reported first.
                proc.resume_value = MatchInfo(entry.src, entry.size, entry.payload)
                scoreboard.remove(entry.msg_id)
                arrivals.pop(entry.msg_id, None)
                runnable.append(proc)
            if prof is not None:
                prof.exclusive(
                    "match", _perf_counter() - match_t0, match_mark
                )

            if not runnable:
                raise ModelDeadlock(
                    {p.ctx.procnum: p.blocked_src for p in blocked},
                    scoreboard.entries(),
                )

        return MachineResult(
            elapsed=max(p.vtime for p in procs),
            finish_times=[p.vtime for p in procs],
            compute_time=[p.compute_time for p in procs],
            send_time=[p.send_time for p in procs],
            recv_wait_time=[p.recv_wait_time for p in procs],
            messages=scoreboard.total_added,
            peak_contention=scoreboard.peak,
            sweeps=sweeps,
            orphans=scoreboard.entries(),
            trace=self.trace,
        )
