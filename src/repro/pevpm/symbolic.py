"""Symbolic performance-model extraction (the paper's proposed extension).

Section 5: "...there is potential for the PEVPM methodology to be
enhanced so that it produces entirely symbolic performance models rather
than empirical ones, which would allow for even lower evaluation cost and
would make the PEVPM approach even more attractive for very wide-ranging
parametric-based performance studies."

This module implements that enhancement as a hybrid static/empirical
extraction:

1. **static analysis** -- for any machine size P, walk the model's
   directive/program structure (no timing involved) and extract the
   per-process workload skeleton: total serial computation and the
   send/receive counts of the *critical* (busiest) process;
2. **anchored fit** -- evaluate the full Monte Carlo PEVPM at a handful of
   anchor machine sizes and fit the residual communication coefficients of

       T(P) ~= W_serial(P) + alpha + beta * R(P)

   where ``W_serial(P)`` is the statically known critical-process compute
   time and ``R(P)`` its receive count (each receive contributes one
   sampled one-way delay to the critical path, on average beta seconds);
3. the resulting :class:`SymbolicModel` answers ``time(P)`` / ``speedup(P)``
   for *any* machine size with a single static walk (milliseconds of host
   time, no Monte Carlo) -- the "wide-ranging parametric studies" use case.

The extraction reports its fit quality at held-out anchors so users can
judge whether the two-term structure suits their program (it does for the
regular codes of Section 6; highly irregular programs should stay with
the Monte Carlo evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .compile import compiled_program_for
from .directives import Block
from .interpreter import compile_model
from .machine import MatchInfo, ModelDeadlock, ProcContext
from .predict import predict
from .timing import TimingModel

__all__ = ["StaticProfile", "SymbolicModel", "extract_symbolic_model", "static_profile"]


@dataclass(frozen=True)
class StaticProfile:
    """Statically extracted per-machine-size workload skeleton."""

    nprocs: int
    serial_critical: float  #: largest per-process total serial time (s)
    recvs_critical: int  #: receive count of that process
    sends_critical: int
    total_messages: int

    @property
    def has_communication(self) -> bool:
        return self.total_messages > 0


def _as_program(model, params):
    if isinstance(model, Block):
        return compile_model(model, params)
    if callable(model):
        return model
    raise TypeError("model must be a directive Block or a program callable")


def static_profile(
    model, nprocs: int, params: dict | None = None, max_ops: int = 10_000_000
) -> StaticProfile:
    """Walk the model for one machine size without evaluating any timing.

    The 'critical process' is the one with the largest serial workload
    (ties broken by receive count) -- for regular codes this is the
    process whose chain dominates completion time.

    Structurally static programs are profiled from their compiled
    schedule (:func:`repro.pevpm.compile.compiled_program_for`): the
    trace already resolved every operation -- with *real* match
    information, not placeholders -- and is cached per (model, params,
    nprocs), so repeated queries (and queries at sizes a Monte Carlo
    evaluation already compiled) cost a summation over op records
    instead of a generator walk.

    For programs the tracer cannot lower -- divergent (wildcard-racing)
    or deadlocking models -- receives are fed a placeholder match so
    data-dependent programs can be walked; for *irregular* programs
    whose control flow truly depends on match outcomes the walk is
    best-effort (it stops a process at the first data-dependent error
    or after *max_ops* operations) -- such programs should be studied
    with the Monte Carlo machine instead.
    """
    try:
        compiled = compiled_program_for(model, nprocs, params)
    except (ModelDeadlock, RuntimeError):
        compiled = None
    if compiled is not None and not compiled.divergent:
        best = (0.0, 0, 0)
        total_messages = 0
        for ops in compiled.ops:
            serial = 0.0
            sends = 0
            recvs = 0
            for op in ops:
                kind = op[0]
                if kind == "serial":
                    serial += op[1]
                elif kind == "send":
                    sends += 1
                else:
                    recvs += 1
            total_messages += sends
            if (serial, recvs) > (best[0], best[1]):
                best = (serial, recvs, sends)
        return StaticProfile(
            nprocs=nprocs,
            serial_critical=best[0],
            recvs_critical=best[1],
            sends_critical=best[2],
            total_messages=total_messages,
        )
    program = _as_program(model, params)
    best = (0.0, 0, 0)
    total_messages = 0
    for p in range(nprocs):
        serial = 0.0
        sends = 0
        recvs = 0
        gen = program(ProcContext(p, nprocs, params))
        ops = 0
        try:
            op = gen.send(None)
            while ops < max_ops:
                ops += 1
                kind = op[0]
                if kind == "serial":
                    serial += op[1]
                elif kind == "send":
                    sends += 1
                    total_messages += 1
                elif kind == "recv":
                    recvs += 1
                # Feed a placeholder match (a plausible non-self source)
                # so the walk can continue past decision points.
                dummy = MatchInfo((p + 1) % max(2, nprocs), 0, None)
                op = gen.send(dummy if kind == "recv" else None)
        except StopIteration:
            pass
        except (TypeError, ValueError):
            # Control flow depended on real match data; stop this process's
            # walk and keep what was seen (best-effort for irregular codes).
            pass
        if (serial, recvs) > (best[0], best[1]):
            best = (serial, recvs, sends)
    return StaticProfile(
        nprocs=nprocs,
        serial_critical=best[0],
        recvs_critical=best[1],
        sends_critical=best[2],
        total_messages=total_messages,
    )


@dataclass
class SymbolicModel:
    """A closed-form performance model ``T(P) = W(P) + alpha + beta R(P)``.

    ``W`` and ``R`` are re-derived statically per machine size; *alpha*
    (fixed startup/imbalance cost) and *beta* (effective per-receive
    delay) were fitted against full PEVPM evaluations at the anchors.
    """

    alpha: float
    beta: float
    anchors: dict[int, float]  #: machine size -> anchored PEVPM time
    rms_relative_error: float  #: fit quality over the anchors
    _model: object
    _params: dict | None

    def profile(self, nprocs: int) -> StaticProfile:
        return static_profile(self._model, nprocs, self._params)

    def time(self, nprocs: int) -> float:
        """Predicted completion time at any machine size (no sampling)."""
        prof = self.profile(nprocs)
        return prof.serial_critical + self.alpha + self.beta * prof.recvs_critical

    def speedup(self, nprocs: int, serial_time: float) -> float:
        if serial_time <= 0:
            raise ValueError("serial_time must be positive")
        return serial_time / self.time(nprocs)

    def curve(self, proc_counts: list[int]) -> dict[int, float]:
        """T(P) over a whole parametric sweep -- the cheap study."""
        return {p: self.time(p) for p in proc_counts}


def extract_symbolic_model(
    model,
    timing: TimingModel,
    anchor_procs: list[int],
    params: dict | None = None,
    runs: int = 3,
    seed: int = 0,
    ppn: int = 1,
) -> SymbolicModel:
    """Fit a :class:`SymbolicModel` from PEVPM evaluations at the anchors.

    *anchor_procs* should span the range of interest (at least two sizes,
    ideally three or more covering small and large machines).
    """
    if len(set(anchor_procs)) < 2:
        raise ValueError("need at least two distinct anchor machine sizes")
    anchors: dict[int, float] = {}
    rows = []
    rhs = []
    for nprocs in sorted(set(anchor_procs)):
        pred = predict(
            model, nprocs, timing, runs=runs, seed=seed, params=params, ppn=ppn
        )
        anchors[nprocs] = pred.mean_time
        prof = static_profile(model, nprocs, params)
        # T - W = alpha + beta * R
        rows.append([1.0, float(prof.recvs_critical)])
        rhs.append(pred.mean_time - prof.serial_critical)
    A = np.asarray(rows)
    y = np.asarray(rhs)
    (alpha, beta), *_ = np.linalg.lstsq(A, y, rcond=None)
    alpha = float(max(0.0, alpha))
    beta = float(max(0.0, beta))

    sym = SymbolicModel(
        alpha=alpha,
        beta=beta,
        anchors=anchors,
        rms_relative_error=0.0,
        _model=model,
        _params=params,
    )
    rel = [(sym.time(p) - t) / t for p, t in anchors.items() if t > 0]
    sym.rms_relative_error = float(np.sqrt(np.mean(np.square(rel)))) if rel else 0.0
    return sym
