"""Safe arithmetic expression evaluation for PEVPM directives.

PEVPM directives carry symbolic expressions -- ``size = xsize*sizeof(float)``,
``time = 3.24/numprocs``, ``c1 = procnum%2 == 0`` -- that are evaluated per
process with ``procnum``/``numprocs`` (and any user parameters) bound.  The
paper stresses that keeping these *symbolic* is what makes PEVPM models
re-evaluable "under different input and environmental conditions", so the
expressions stay as text in the model and are compiled here.

Safety comes from a whitelisting AST transform: arithmetic, comparisons,
boolean logic, a few math functions, and ``sizeof(<ctype>)``.  No
attribute access, no subscripts, no calls beyond the whitelist -- a model
file cannot execute arbitrary code.  Speed comes from compiling the
validated tree to a Python code object (cached per tree): the virtual
machine evaluates every directive expression once per process per
iteration, millions of times per Monte Carlo study, and a cached
``eval`` is several times cheaper than an AST walk.
"""

from __future__ import annotations

import ast
import math
import weakref
from typing import Any, Mapping

__all__ = ["ExprError", "compile_expr", "evaluate", "SIZEOF"]


class ExprError(ValueError):
    """A directive expression failed to parse or evaluate."""


#: C type extents accepted by ``sizeof(...)`` in size expressions.
SIZEOF = {
    "char": 1,
    "byte": 1,
    "short": 2,
    "int": 4,
    "float": 4,
    "long": 8,
    "double": 8,
}

_FUNCTIONS: dict[str, Any] = {
    "min": min,
    "max": max,
    "abs": abs,
    "int": int,
    "floor": math.floor,
    "ceil": math.ceil,
    "sqrt": math.sqrt,
    "log": math.log,
    "log2": math.log2,
}

_ALLOWED_BINOPS = (
    ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow,
)
_ALLOWED_UNARYOPS = (ast.USub, ast.UAdd, ast.Not)
_ALLOWED_CMPOPS = (ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE)

#: globals handed to the compiled code: whitelisted functions only, no
#: builtins.  ``_bool`` normalises short-circuit results so boolean
#: expressions evaluate to actual booleans (``x or y`` in Python returns
#: an operand, not a bool).
_EVAL_GLOBALS = {"__builtins__": {}, "_bool": bool, **_FUNCTIONS}


class _Whitelist(ast.NodeTransformer):
    """Validate a directive expression tree and prepare it for ``compile``.

    Anything outside the whitelist raises :class:`ExprError`;
    ``sizeof(<ctype>)`` calls are folded to integer constants and boolean
    operations are wrapped in ``_bool`` so their value is a proper bool.
    """

    def visit_Expression(self, node):
        return ast.Expression(body=self.visit(node.body))

    def visit_Constant(self, node):
        if isinstance(node.value, (int, float, bool)):
            return node
        raise ExprError(f"constant {node.value!r} not allowed")

    def visit_Name(self, node):
        if not isinstance(node.ctx, ast.Load):
            raise ExprError("directive expressions cannot assign")
        return node

    def visit_BinOp(self, node):
        if not isinstance(node.op, _ALLOWED_BINOPS):
            raise ExprError(f"operator {type(node.op).__name__} not allowed")
        return ast.BinOp(self.visit(node.left), node.op, self.visit(node.right))

    def visit_UnaryOp(self, node):
        if not isinstance(node.op, _ALLOWED_UNARYOPS):
            raise ExprError(f"unary {type(node.op).__name__} not allowed")
        return ast.UnaryOp(node.op, self.visit(node.operand))

    def visit_BoolOp(self, node):
        inner = ast.BoolOp(node.op, [self.visit(v) for v in node.values])
        return ast.Call(
            func=ast.Name(id="_bool", ctx=ast.Load()), args=[inner], keywords=[]
        )

    def visit_Compare(self, node):
        for op in node.ops:
            if not isinstance(op, _ALLOWED_CMPOPS):
                raise ExprError(f"comparison {type(op).__name__} not allowed")
        return ast.Compare(
            self.visit(node.left), node.ops,
            [self.visit(c) for c in node.comparators],
        )

    def visit_Call(self, node):
        if not isinstance(node.func, ast.Name):
            raise ExprError("only simple function calls are allowed")
        name = node.func.id
        if node.keywords:
            raise ExprError("keyword arguments not allowed")
        if name == "sizeof":
            if len(node.args) != 1 or not isinstance(node.args[0], ast.Name):
                raise ExprError("sizeof takes one bare type name")
            ctype = node.args[0].id
            try:
                return ast.Constant(value=SIZEOF[ctype])
            except KeyError:
                raise ExprError(f"unknown C type {ctype!r} in sizeof") from None
        if name not in _FUNCTIONS:
            raise ExprError(f"function {name!r} not allowed")
        return ast.Call(
            func=node.func, args=[self.visit(a) for a in node.args], keywords=[]
        )

    def visit_IfExp(self, node):
        return ast.IfExp(
            self.visit(node.test), self.visit(node.body), self.visit(node.orelse)
        )

    def generic_visit(self, node):
        raise ExprError(f"syntax {type(node).__name__} not allowed in directives")


#: validated code objects, keyed weakly by the parsed tree so directive
#: IR can be garbage-collected (and pickled) freely.
_CODE_CACHE: "weakref.WeakKeyDictionary[ast.Expression, Any]" = (
    weakref.WeakKeyDictionary()
)


def _code_for(tree: ast.Expression):
    code = _CODE_CACHE.get(tree)
    if code is None:
        checked = _Whitelist().visit(tree)
        ast.fix_missing_locations(checked)
        code = compile(checked, "<pevpm-directive>", "eval")
        _CODE_CACHE[tree] = code
    return code


def compile_expr(text: str) -> ast.Expression:
    """Parse a directive expression to an AST, validating the syntax."""
    if not isinstance(text, str) or not text.strip():
        raise ExprError("empty expression")
    try:
        tree = ast.parse(text.strip(), mode="eval")
    except SyntaxError as exc:
        raise ExprError(f"cannot parse expression {text!r}: {exc.msg}") from None
    return tree


def evaluate(expr: str | ast.Expression, names: Mapping[str, Any]) -> Any:
    """Evaluate a directive expression with the given variable bindings."""
    tree = compile_expr(expr) if isinstance(expr, str) else expr
    code = _code_for(tree)
    try:
        return eval(code, _EVAL_GLOBALS, names)
    except NameError as exc:
        name = getattr(exc, "name", None) or str(exc)
        raise ExprError(f"unknown variable {name!r}") from None
    except ZeroDivisionError:
        raise ExprError("division by zero in directive expression") from None
