"""Safe arithmetic expression evaluation for PEVPM directives.

PEVPM directives carry symbolic expressions -- ``size = xsize*sizeof(float)``,
``time = 3.24/numprocs``, ``c1 = procnum%2 == 0`` -- that are evaluated per
process with ``procnum``/``numprocs`` (and any user parameters) bound.  The
paper stresses that keeping these *symbolic* is what makes PEVPM models
re-evaluable "under different input and environmental conditions", so the
expressions stay as text in the model and are compiled here.

Evaluation uses a whitelisted AST walk: arithmetic, comparisons, boolean
logic, a few math functions, and ``sizeof(<ctype>)``.  No attribute access,
no subscripts, no calls beyond the whitelist -- a model file cannot execute
arbitrary code.
"""

from __future__ import annotations

import ast
import math
from typing import Any, Mapping

__all__ = ["ExprError", "compile_expr", "evaluate", "SIZEOF"]


class ExprError(ValueError):
    """A directive expression failed to parse or evaluate."""


#: C type extents accepted by ``sizeof(...)`` in size expressions.
SIZEOF = {
    "char": 1,
    "byte": 1,
    "short": 2,
    "int": 4,
    "float": 4,
    "long": 8,
    "double": 8,
}

_FUNCTIONS: dict[str, Any] = {
    "min": min,
    "max": max,
    "abs": abs,
    "int": int,
    "floor": math.floor,
    "ceil": math.ceil,
    "sqrt": math.sqrt,
    "log": math.log,
    "log2": math.log2,
}

_BINOPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.Pow: lambda a, b: a**b,
}

_CMPOPS = {
    ast.Eq: lambda a, b: a == b,
    ast.NotEq: lambda a, b: a != b,
    ast.Lt: lambda a, b: a < b,
    ast.LtE: lambda a, b: a <= b,
    ast.Gt: lambda a, b: a > b,
    ast.GtE: lambda a, b: a >= b,
}


class _Evaluator(ast.NodeVisitor):
    def __init__(self, names: Mapping[str, Any]):
        self.names = names

    def visit_Expression(self, node):
        return self.visit(node.body)

    def visit_Constant(self, node):
        if isinstance(node.value, (int, float, bool)):
            return node.value
        raise ExprError(f"constant {node.value!r} not allowed")

    def visit_Name(self, node):
        try:
            return self.names[node.id]
        except KeyError:
            raise ExprError(f"unknown variable {node.id!r}") from None

    def visit_BinOp(self, node):
        op = _BINOPS.get(type(node.op))
        if op is None:
            raise ExprError(f"operator {type(node.op).__name__} not allowed")
        try:
            return op(self.visit(node.left), self.visit(node.right))
        except ZeroDivisionError:
            raise ExprError("division by zero in directive expression") from None

    def visit_UnaryOp(self, node):
        val = self.visit(node.operand)
        if isinstance(node.op, ast.USub):
            return -val
        if isinstance(node.op, ast.UAdd):
            return +val
        if isinstance(node.op, ast.Not):
            return not val
        raise ExprError(f"unary {type(node.op).__name__} not allowed")

    def visit_BoolOp(self, node):
        values = [self.visit(v) for v in node.values]
        if isinstance(node.op, ast.And):
            return all(values)
        return any(values)

    def visit_Compare(self, node):
        left = self.visit(node.left)
        for op, comparator in zip(node.ops, node.comparators):
            fn = _CMPOPS.get(type(op))
            if fn is None:
                raise ExprError(f"comparison {type(op).__name__} not allowed")
            right = self.visit(comparator)
            if not fn(left, right):
                return False
            left = right
        return True

    def visit_Call(self, node):
        if not isinstance(node.func, ast.Name):
            raise ExprError("only simple function calls are allowed")
        name = node.func.id
        if node.keywords:
            raise ExprError("keyword arguments not allowed")
        if name == "sizeof":
            if len(node.args) != 1 or not isinstance(node.args[0], ast.Name):
                raise ExprError("sizeof takes one bare type name")
            ctype = node.args[0].id
            try:
                return SIZEOF[ctype]
            except KeyError:
                raise ExprError(f"unknown C type {ctype!r} in sizeof") from None
        fn = _FUNCTIONS.get(name)
        if fn is None:
            raise ExprError(f"function {name!r} not allowed")
        return fn(*(self.visit(a) for a in node.args))

    def visit_IfExp(self, node):
        return self.visit(node.body) if self.visit(node.test) else self.visit(node.orelse)

    def generic_visit(self, node):
        raise ExprError(f"syntax {type(node).__name__} not allowed in directives")


def compile_expr(text: str) -> ast.Expression:
    """Parse a directive expression to an AST, validating the syntax."""
    if not isinstance(text, str) or not text.strip():
        raise ExprError("empty expression")
    try:
        tree = ast.parse(text.strip(), mode="eval")
    except SyntaxError as exc:
        raise ExprError(f"cannot parse expression {text!r}: {exc.msg}") from None
    return tree


def evaluate(expr: str | ast.Expression, names: Mapping[str, Any]) -> Any:
    """Evaluate a directive expression with the given variable bindings."""
    tree = compile_expr(expr) if isinstance(expr, str) else expr
    return _Evaluator(names).visit(tree)
