"""Parser for ``// PEVPM`` source annotations (the paper's Figure 5 format).

The annotation grammar, reconstructed from the paper's listing:

* a directive starts on a line ``// PEVPM <Kind> key = value`` and may be
  continued with ``// PEVPM & key = value`` lines;
* ``// PEVPM {`` opens a block, ``// PEVPM }`` closes one;
* ``Loop``  takes ``iterations`` and is followed by one block;
* ``Runon`` takes conditions ``c1``, ``c2``, ... and is followed by one
  block per condition (an if / else-if chain);
* ``Message`` takes ``type``, ``size``, ``from``, ``to``;
* ``Serial`` is written ``Serial on <machine> time = <expr>``;
* ``Coll_Bcast`` / ``Coll_Reduce`` take ``size`` and an optional
  ``root`` (default 0); ``Coll_Allreduce`` / ``Coll_Allgather`` take
  ``size`` only.  Collectives are unguarded -- every process executes
  them, as MPI requires.

Everything that is not a ``// PEVPM`` line (i.e. the actual C code) is
ignored, so a fully annotated source file -- like the paper's Jacobi
listing -- parses directly.  The parser is line-oriented and reports the
offending line number on error.
"""

from __future__ import annotations

import re

from .directives import (
    ROOTED_OPS,
    Block,
    Collective,
    Loop,
    Message,
    ModelError,
    Runon,
    Serial,
    validate_model,
)

__all__ = ["parse_annotations", "ParseError"]


class ParseError(ModelError):
    """Malformed PEVPM annotation text."""


_PREFIX = re.compile(r"^\s*//\s*PEVPM\b(.*)$")
_KV = re.compile(r"^\s*(\w+)\s*=\s*(.+?)\s*$")


def _extract_lines(text: str) -> list[tuple[int, str]]:
    """Pull out the PEVPM payloads: (line number, content) pairs."""
    out = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        m = _PREFIX.match(raw)
        if m:
            out.append((lineno, m.group(1).strip()))
    return out


def _join_continuations(lines: list[tuple[int, str]]) -> list[tuple[int, str]]:
    """Merge ``&`` continuation lines into their directive line."""
    merged: list[tuple[int, str]] = []
    for lineno, content in lines:
        if content.startswith("&"):
            if not merged:
                raise ParseError(f"line {lineno}: continuation '&' with no directive")
            prev_line, prev = merged[-1]
            merged[-1] = (prev_line, prev + " & " + content[1:].strip())
        else:
            merged.append((lineno, content))
    return merged


def _split_fields(body: str) -> list[tuple[str, str]]:
    """Split ``key = value & key = value ...`` into pairs."""
    fields = []
    for chunk in body.split("&"):
        chunk = chunk.strip()
        if not chunk:
            continue
        m = _KV.match(chunk)
        if not m:
            raise ParseError(f"malformed field {chunk!r}")
        fields.append((m.group(1), m.group(2)))
    return fields


class _Parser:
    def __init__(self, lines: list[tuple[int, str]]):
        self.lines = lines
        self.pos = 0

    def peek(self) -> tuple[int, str] | None:
        return self.lines[self.pos] if self.pos < len(self.lines) else None

    def next(self) -> tuple[int, str]:
        item = self.lines[self.pos]
        self.pos += 1
        return item

    # -- grammar -----------------------------------------------------------
    def parse_block_body(self, stop_at_close: bool) -> Block:
        """Parse directives until '}' (if stop_at_close) or end of input."""
        block = Block()
        while True:
            item = self.peek()
            if item is None:
                if stop_at_close:
                    raise ParseError("unexpected end of annotations: missing '}'")
                return block
            lineno, content = item
            if content == "}":
                if not stop_at_close:
                    raise ParseError(f"line {lineno}: unmatched '}}'")
                self.next()
                return block
            block.children.append(self.parse_directive())

    def expect_open_block(self, what: str) -> Block:
        item = self.peek()
        if item is None or item[1] != "{":
            where = f"line {item[0]}" if item else "end of input"
            raise ParseError(f"{where}: expected '{{' to open {what} block")
        self.next()
        return self.parse_block_body(stop_at_close=True)

    def parse_directive(self):
        lineno, content = self.next()
        if content == "{":
            raise ParseError(f"line {lineno}: unexpected '{{' without a directive")
        word, _, rest = content.partition(" ")
        kind = word.lower()
        if kind == "loop":
            fields = dict(_split_fields(rest))
            if "iterations" not in fields:
                raise ParseError(f"line {lineno}: Loop needs iterations = <expr>")
            body = self.expect_open_block("Loop")
            return Loop(fields["iterations"], body=body, line=lineno)
        if kind == "runon":
            pairs = _split_fields(rest)
            if not pairs:
                raise ParseError(f"line {lineno}: Runon needs at least one condition")
            for key, _v in pairs:
                if not re.fullmatch(r"c\d+", key):
                    raise ParseError(
                        f"line {lineno}: Runon conditions must be named c1, c2, ... "
                        f"(got {key!r})"
                    )
            conditions = [v for _k, v in pairs]
            blocks = [self.expect_open_block(f"Runon {k}") for k, _v in pairs]
            return Runon(conditions, blocks=blocks, line=lineno)
        if kind == "message":
            fields = dict(_split_fields(rest))
            missing = {"type", "size", "from", "to"} - set(fields)
            if missing:
                raise ParseError(
                    f"line {lineno}: Message missing field(s) {sorted(missing)}"
                )
            return Message(
                fields["type"], fields["size"], fields["from"], fields["to"],
                line=lineno,
            )
        if kind.startswith("coll_"):
            fields = dict(_split_fields(rest))
            if "size" not in fields:
                raise ParseError(f"line {lineno}: {word} needs size = <expr>")
            op = kind[len("coll_"):]
            allowed = {"size"} | ({"root"} if op in ROOTED_OPS else set())
            extra = set(fields) - allowed
            if extra:
                raise ParseError(
                    f"line {lineno}: {word} does not take {sorted(extra)}"
                )
            try:
                return Collective(
                    op, fields["size"], root=fields.get("root", "0"),
                    line=lineno,
                )
            except ModelError as exc:
                raise ParseError(f"line {lineno}: {exc}") from None
        if kind == "serial":
            # "Serial on perseus time = 3.24/numprocs" or "Serial time = ...".
            machine = ""
            body = rest
            m = re.match(r"^on\s+(\S+)\s+(.*)$", rest)
            if m:
                machine, body = m.group(1), m.group(2)
            fields = dict(_split_fields(body))
            if "time" not in fields:
                raise ParseError(f"line {lineno}: Serial needs time = <expr>")
            return Serial(fields["time"], machine=machine, line=lineno)
        raise ParseError(f"line {lineno}: unknown directive {word!r}")


def parse_annotations(text: str) -> Block:
    """Parse annotated source text into a validated model tree.

    *text* can be a fully annotated C file (non-PEVPM lines are ignored)
    or bare annotation lines.
    """
    lines = _join_continuations(_extract_lines(text))
    if not lines:
        raise ParseError("no '// PEVPM' annotations found")
    parser = _Parser(lines)
    model = parser.parse_block_body(stop_at_close=False)
    validate_model(model)
    return model
