"""PEVPM: the Performance Evaluating Virtual Parallel Machine.

The paper's primary contribution (Sections 5-6): an execution-driven
performance model that simulates a message-passing program's time
structure by interleaved sweep/match phases, sampling operation times
from MPIBench distributions conditioned on the contention scoreboard.

Typical use::

    from repro.pevpm import parse_annotations, predict, timing_from_db

    model = parse_annotations(open("jacobi.c").read())
    timing = timing_from_db(db, mode="distribution")
    prediction = predict(model, nprocs=64, timing=timing, runs=10)
    prediction.mean_time
"""

from .directives import (
    COLLECTIVE_OPS,
    Block,
    Collective,
    Loop,
    Message,
    MessageKind,
    ModelError,
    Runon,
    Serial,
    validate_model,
)
from .compile import (
    CompiledProgram,
    clear_compile_cache,
    compile_program,
    compiled_program_for,
)
from .expr import ExprError, evaluate
from .interpreter import compile_model, lower_collective, model_messages
from .machine import ANY_SOURCE, MachineResult, ModelDeadlock, ProcContext, VirtualMachine
from .parallel import (
    VECTOR_BATCH,
    PredictionCache,
    RunGroup,
    RunOutcome,
    as_seed_sequence,
    chunk_seed,
    evaluate_groups,
    resolve_workers,
    run_seeds,
)
from .vector import BatchedVirtualMachine
from . import patterns
from .parser import ParseError, parse_annotations
from ..stats import PrecisionTarget
from .predict import (
    AdaptiveResult,
    Prediction,
    build_prediction,
    compare_timing_modes,
    evaluate_with_precision,
    predict,
    predict_speedups,
    prediction_doc,
    prediction_from_doc,
)
from .scoreboard import Scoreboard, ScoreboardEntry, VectorEntry, VectorScoreboard
from .symbolic import StaticProfile, SymbolicModel, extract_symbolic_model, static_profile
from .timeline import iteration_profile, render_run_spread, render_timeline
from .timing import (
    AverageTiming,
    DistributionTiming,
    HockneyTiming,
    MinimumTiming,
    ParametricTiming,
    TimingModel,
    clamp_times,
    timing_from_db,
)
from .trace import LossReport, TraceEvent, TraceRecorder

__all__ = [
    "ANY_SOURCE",
    "AdaptiveResult",
    "AverageTiming",
    "BatchedVirtualMachine",
    "Block",
    "COLLECTIVE_OPS",
    "Collective",
    "CompiledProgram",
    "DistributionTiming",
    "ExprError",
    "HockneyTiming",
    "Loop",
    "LossReport",
    "MachineResult",
    "Message",
    "MessageKind",
    "MinimumTiming",
    "ModelDeadlock",
    "ModelError",
    "ParametricTiming",
    "ParseError",
    "PrecisionTarget",
    "Prediction",
    "PredictionCache",
    "ProcContext",
    "RunGroup",
    "RunOutcome",
    "Runon",
    "Scoreboard",
    "ScoreboardEntry",
    "Serial",
    "StaticProfile",
    "SymbolicModel",
    "TimingModel",
    "TraceEvent",
    "TraceRecorder",
    "VECTOR_BATCH",
    "VectorEntry",
    "VectorScoreboard",
    "VirtualMachine",
    "as_seed_sequence",
    "build_prediction",
    "chunk_seed",
    "clamp_times",
    "compare_timing_modes",
    "prediction_doc",
    "prediction_from_doc",
    "clear_compile_cache",
    "compile_model",
    "compile_program",
    "compiled_program_for",
    "evaluate",
    "evaluate_groups",
    "evaluate_with_precision",
    "lower_collective",
    "resolve_workers",
    "run_seeds",
    "extract_symbolic_model",
    "static_profile",
    "model_messages",
    "parse_annotations",
    "patterns",
    "predict",
    "predict_speedups",
    "render_timeline",
    "render_run_spread",
    "iteration_profile",
    "timing_from_db",
    "validate_model",
]
