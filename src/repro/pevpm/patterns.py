"""Collective communication patterns for PEVPM models.

The PEVPM directive language models point-to-point messages; programs
that use MPI collectives are modelled by their constituent messages
(exactly how the runtime implements them).  This module provides the
patterns as reusable generators that mirror
:mod:`repro.smpi.collectives` message-for-message -- same algorithms,
same rounds, same sizes -- so a model of a collective-using program stays
structurally faithful to its execution:

    def program(ctx):
        yield from patterns.bcast(ctx, size=1024, root=0)
        yield ctx.serial(work)
        yield from patterns.allreduce(ctx, size=8)

Each pattern is validated against the measured runtime collectives in
``tests/pevpm/test_patterns.py``.
"""

from __future__ import annotations

from .machine import ProcContext

__all__ = [
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
    "allgather",
    "alltoall",
]


def barrier(ctx: ProcContext):
    """Dissemination barrier: ceil(log2 P) rounds of 0-byte exchanges."""
    P = ctx.numprocs
    if P == 1:
        return
    mask = 1
    while mask < P:
        dest = (ctx.procnum + mask) % P
        source = (ctx.procnum - mask) % P
        # The runtime's sendrecv posts the receive first; the model's
        # nonblocking send makes plain send+recv equivalent here.
        yield ctx.send(dest, 0, label="barrier")
        yield ctx.recv(source, label="barrier")
        mask <<= 1


def bcast(ctx: ProcContext, size: int, root: int = 0):
    """Binomial-tree broadcast (mirrors smpi.collectives.bcast)."""
    P = ctx.numprocs
    if P == 1:
        return
    relative = (ctx.procnum - root) % P
    if relative != 0:
        lsb = relative & (-relative)
        parent = (ctx.procnum - lsb) % P
        yield ctx.recv(parent, label="bcast")
        mask = lsb >> 1
    else:
        mask = 1
        while mask < P:
            mask <<= 1
        mask >>= 1
    while mask >= 1:
        if relative + mask < P:
            child = (ctx.procnum + mask) % P
            yield ctx.send(child, size, label="bcast")
        mask >>= 1


def reduce(ctx: ProcContext, size: int, root: int = 0):
    """Binomial-tree reduction (mirrors smpi.collectives.reduce)."""
    P = ctx.numprocs
    if P == 1:
        return
    relative = (ctx.procnum - root) % P
    mask = 1
    while mask < P:
        if relative & mask:
            parent = (ctx.procnum - mask) % P
            yield ctx.send(parent, size, label="reduce")
            return
        partner_rel = relative + mask
        if partner_rel < P:
            child = (ctx.procnum + mask) % P
            yield ctx.recv(child, label="reduce")
        mask <<= 1


def allreduce(ctx: ProcContext, size: int):
    """reduce-to-0 then broadcast, like the runtime."""
    yield from reduce(ctx, size, root=0)
    yield from bcast(ctx, size, root=0)


def gather(ctx: ProcContext, size: int, root: int = 0):
    """Linear gather to *root*."""
    P = ctx.numprocs
    if P == 1:
        return
    if ctx.procnum != root:
        yield ctx.send(root, size, label="gather")
        return
    for _ in range(P - 1):
        yield ctx.recv(label="gather")


def scatter(ctx: ProcContext, size: int, root: int = 0):
    """Linear scatter from *root*."""
    P = ctx.numprocs
    if P == 1:
        return
    if ctx.procnum == root:
        for dest in range(P):
            if dest != root:
                yield ctx.send(dest, size, label="scatter")
        return
    yield ctx.recv(root, label="scatter")


def allgather(ctx: ProcContext, size: int):
    """Ring allgather: P-1 forwarding steps."""
    P = ctx.numprocs
    if P == 1:
        return
    right = (ctx.procnum + 1) % P
    left = (ctx.procnum - 1) % P
    for _ in range(P - 1):
        yield ctx.send(right, size, label="allgather")
        yield ctx.recv(left, label="allgather")


def alltoall(ctx: ProcContext, size: int):
    """Shifted pairwise exchange: P-1 rounds."""
    P = ctx.numprocs
    for step in range(1, P):
        dest = (ctx.procnum + step) % P
        source = (ctx.procnum - step) % P
        yield ctx.send(dest, size, label="alltoall")
        yield ctx.recv(source, label="alltoall")
