"""The batched (vectorised) virtual parallel machine.

The scalar engine in :mod:`repro.pevpm.machine` evaluates one Monte
Carlo run per sweep/match pass, so R runs pay the Python interpreter R
times for every modelled message.  This module advances *all R runs in
lockstep*: one generator step per process per operation, with the
per-run virtual clocks, departure times and arrival times carried as
NumPy ``(R,)`` vectors and every timing draw served by the batch API
(:meth:`~repro.pevpm.timing.TimingModel.one_way_times` /
``local_send_times``).

This works because a model program's *structure* -- which operations
each process executes, which messages exist, which process blocks at
which receive -- is almost always identical across runs; only the clock
values differ.  The engine exploits that by keeping one scoreboard and
one generator per process for the whole batch, and handles the
exceptions by **divergence splitting**:

* a wildcard (``ANY_SOURCE``) receive samples an arrival vector for
  every candidate message; if different runs would match different
  messages, the batch splits into congruent sub-batches (one per winning
  message, in ascending message-id order), each continuing
  independently with its runs' slice of every state vector;
* control flow after a split can genuinely differ (a task-farm master
  reacts to whichever worker reported first), so each sub-batch *forks*
  its process generators by deterministic replay: a fresh generator is
  driven through the recorded resume history (the sequence of
  :class:`~repro.pevpm.machine.MatchInfo` values delivered so far).

A sub-batch of size 1 is exactly the per-run engine evaluated through
length-1 vectors -- heavily divergent programs degrade gracefully to
per-run evaluation cost.

Batch-mode conventions (documented in DESIGN.md section 6):

* one RNG stream per batch, consumed in a deterministic order fixed by
  the program's structure, so the same seed gives bit-identical output
  regardless of host or worker count;
* within a match phase, blocked processes are served in ascending
  process-number order (the scalar engine orders by block time, a
  per-run quantity, which a congruent batch cannot use).  Batch and
  scalar modes are therefore *statistically* equivalent samplers of the
  same model, not bit-identical ones.
"""

from __future__ import annotations

from time import perf_counter as _perf_counter
from typing import Callable, Generator

import numpy as np

from .machine import (
    ANY_SOURCE,
    MachineResult,
    MatchInfo,
    ModelDeadlock,
    ProcContext,
    validate_machine_config,
)
from .scoreboard import ScoreboardEntry, VectorEntry, VectorScoreboard
from .timing import TimingModel

__all__ = ["BatchedVirtualMachine"]


class _BatchProc:
    """Per-process state for one (sub-)batch: one shared generator, with
    the run-dependent clocks as ``(r,)`` vectors."""

    __slots__ = (
        "ctx", "gen", "ops", "ip", "done", "blocked_src", "blocked_label",
        "resume_value", "n_yields", "matches", "vtime", "compute", "send_t",
        "wait", "block_start", "sends", "recvs",
    )

    def __init__(self, ctx: ProcContext, gen, r: int, ops=None):
        self.ctx = ctx
        self.gen = gen
        #: compiled schedule + instruction pointer; when set, the sweep
        #: walks these ops instead of resuming the generator
        self.ops = ops
        self.ip = 0
        self.done = False
        self.blocked_src: int | None = None
        self.blocked_label = ""
        self.resume_value = None
        #: successful generator resumptions so far (the replay length)
        self.n_yields = 0
        #: MatchInfo values delivered at receive completions, in order --
        #: together with n_yields this is the full resume history
        self.matches: list[MatchInfo] = []
        self.vtime = np.zeros(r)
        self.compute = np.zeros(r)
        self.send_t = np.zeros(r)
        self.wait = np.zeros(r)
        self.block_start = np.zeros(r)
        self.sends = 0
        self.recvs = 0


class _SubBatch:
    """A set of runs whose control flow is (so far) congruent, plus the
    engine's resume point within the sweep/match loop."""

    __slots__ = (
        "runs", "procs", "scoreboard", "arrivals", "last_arrival",
        "tx_free", "rx_free", "sweeps", "mode", "runnable", "blocked",
        "match_idx",
    )

    def __init__(self):
        self.runs: np.ndarray | None = None  #: global run indices
        self.procs: list[_BatchProc] = []
        self.scoreboard = VectorScoreboard()
        self.arrivals: dict[int, np.ndarray] = {}
        self.last_arrival: dict[tuple[int, int], np.ndarray] = {}
        self.tx_free: dict[int, np.ndarray] = {}
        self.rx_free: dict[int, np.ndarray] = {}
        self.sweeps = 0
        self.mode = "sweep"
        self.runnable: list[int] = []
        self.blocked: list[int] = []
        self.match_idx = 0

    @property
    def size(self) -> int:
        return len(self.runs)


class BatchedVirtualMachine:
    """Evaluate *runs* Monte Carlo runs of a model program in one pass.

    Mirrors :class:`~repro.pevpm.machine.VirtualMachine` but
    :meth:`run` returns one :class:`MachineResult` per run, all drawn
    from a single RNG stream seeded by *seed* (see the module docstring
    for the batch-mode seed-stream convention).  Tracing is not
    supported -- a traced run needs the per-run engine.
    """

    def __init__(
        self,
        nprocs: int,
        timing: TimingModel,
        seed: int | np.random.SeedSequence = 0,
        runs: int = 1,
        params: dict | None = None,
        max_sweeps: int = 10_000_000,
        nic_serialisation: str = "tx",
        ppn: int = 1,
        profiler=None,
    ):
        validate_machine_config(nprocs, ppn, nic_serialisation)
        if runs < 1:
            raise ValueError("runs must be >= 1")
        self.nprocs = nprocs
        self.timing = timing
        self.runs = runs
        self.params = params or {}
        self.rng = np.random.default_rng(seed)
        self.max_sweeps = max_sweeps
        self.nic_serialisation = nic_serialisation
        self.ppn = ppn
        #: divergence splits performed during the last :meth:`run`
        self.splits = 0
        #: size-1 sub-batches created (the per-run fallback degree)
        self.singleton_subbatches = 0
        #: optional :class:`repro.obs.PhaseProfiler` accumulating host
        #: seconds into sweep/match/sample buckets.  Wall-clock reads
        #: only -- never the seeded RNG stream, so a profiled batch is
        #: bit-identical to an unprofiled one.
        self.profiler = profiler

    # -- lifecycle ---------------------------------------------------------------
    def run(
        self, program: Callable[[ProcContext], Generator]
    ) -> list[MachineResult]:
        """Evaluate the batch; returns run-ordered results."""
        # Compiled programs run through the cursor sweep (bit-identical
        # op stream, no generator machinery); divergent ones fall back to
        # their generator form so sub-batch splitting works unchanged.
        from .compile import CompiledProgram  # function-level: avoids cycle

        schedule = None
        if isinstance(program, CompiledProgram):
            if program.nprocs != self.nprocs:
                raise ValueError(
                    f"program compiled for {program.nprocs} processes, "
                    f"machine has {self.nprocs}"
                )
            if program.divergent:
                program = program.fallback
            else:
                schedule = program.schedule(self.ppn)
        self.timing.reset()
        self.splits = 0
        self.singleton_subbatches = 0
        results: list[MachineResult | None] = [None] * self.runs

        root = _SubBatch()
        root.runs = np.arange(self.runs)
        root.runnable = list(range(self.nprocs))
        for p in range(self.nprocs):
            ctx = ProcContext(p, self.nprocs, self.params)
            if schedule is None:
                root.procs.append(_BatchProc(ctx, program(ctx), self.runs))
            else:
                root.procs.append(
                    _BatchProc(ctx, None, self.runs, ops=schedule[p])
                )

        # Depth-first over congruent sub-batches: children are pushed in
        # reverse winner order so the lowest-message-id branch runs next.
        # The traversal order is structural, hence deterministic for a
        # given seed -- the single RNG stream is consumed identically on
        # every host and under every worker count.
        stack = [root]
        while stack:
            sb = stack.pop()
            children = self._advance(sb, program)
            if children is None:
                self._emit(sb, results)
            else:
                stack.extend(reversed(children))
        return results  # type: ignore[return-value]

    # -- the batched sweep/match loop ---------------------------------------------
    def _advance(self, sb: _SubBatch, program) -> list[_SubBatch] | None:
        """Run *sb* until it completes (returns ``None``) or diverges
        (returns its child sub-batches)."""
        while True:
            if sb.mode == "sweep":
                sb.sweeps += 1
                if sb.sweeps > self.max_sweeps:
                    raise RuntimeError(
                        f"model exceeded {self.max_sweeps} sweep/match rounds"
                    )
                prof = self.profiler
                if prof is None:
                    for pn in sb.runnable:
                        self._sweep(sb, pn)
                else:
                    mark = prof.mark()
                    t0 = _perf_counter()
                    for pn in sb.runnable:
                        self._sweep(sb, pn)
                    # Draw time inside the sweep is already in "sample";
                    # exclusive() keeps the buckets disjoint.
                    prof.exclusive("sweep", _perf_counter() - t0, mark)
                alive = [p for p in sb.procs if not p.done]
                if not alive:
                    return None
                # The scalar engine serves blocked processes in (block
                # time, procnum) order; block times are per-run here, so
                # the batch convention orders by the *batch-mean* block
                # time -- run-independent (hence congruent) and exactly
                # the scalar order whenever the runs agree.  The NIC
                # occupancy chaining depends on this order, so matching
                # the scalar convention keeps the engines statistically
                # aligned.  Computed as the block-time *sum* (same order:
                # every proc divides by the same run count), via
                # np.add.reduce to skip ndarray.mean's Python wrapper --
                # this sort key is a few percent of total engine time.
                sb.blocked = [
                    p.ctx.procnum
                    for p in sorted(
                        (p for p in alive if p.blocked_src is not None),
                        key=lambda p: (float(np.add.reduce(p.block_start)),
                                       p.ctx.procnum),
                    )
                ]
                sb.match_idx = 0
                sb.runnable = []
                sb.mode = "match"
            else:
                prof = self.profiler
                if prof is None:
                    children = self._match(sb, program)
                else:
                    mark = prof.mark()
                    t0 = _perf_counter()
                    children = self._match(sb, program)
                    prof.exclusive("match", _perf_counter() - t0, mark)
                if children is not None:
                    return children
                if not sb.runnable:
                    raise ModelDeadlock(
                        {
                            pn: sb.procs[pn].blocked_src
                            for pn in sb.blocked
                            if sb.procs[pn].blocked_src is not None
                        },
                        self._orphans(sb, 0),
                    )
                sb.mode = "sweep"

    def _sweep(self, sb: _SubBatch, pn: int) -> None:
        """Advance process *pn* to its next decision point, vectorised."""
        proc = sb.procs[pn]
        if proc.ops is not None:
            self._sweep_compiled(sb, proc, pn)
            return
        gen = proc.gen
        scoreboard = sb.scoreboard
        timing = self.timing
        rng = self.rng
        r = sb.size
        while True:
            try:
                op = gen.send(proc.resume_value)
            except StopIteration:
                proc.done = True
                proc.gen = None
                return
            finally:
                proc.resume_value = None
            proc.n_yields += 1
            kind = op[0]
            if kind == "serial":
                seconds = op[1]
                proc.vtime = proc.vtime + seconds
                proc.compute += seconds
            elif kind == "send":
                _k, dst, size, _label, payload = op
                intra = pn // self.ppn == dst // self.ppn
                depart = proc.vtime
                prof = self.profiler
                if prof is None:
                    cost = timing.local_send_times(
                        size, scoreboard.contention, rng, r, intra=intra
                    )
                else:
                    t0 = _perf_counter()
                    cost = timing.local_send_times(
                        size, scoreboard.contention, rng, r, intra=intra
                    )
                    prof.add("sample", _perf_counter() - t0)
                # Rebind (never mutate) the clock: the scoreboard entry
                # keeps the departure vector alive.
                proc.vtime = depart + cost
                proc.send_t += cost
                proc.sends += 1
                scoreboard.add(pn, dst, size, depart, intra=intra, payload=payload)
            elif kind == "recv":
                proc.blocked_src = op[1]
                proc.blocked_label = op[2]
                proc.block_start = proc.vtime
                return
            else:
                raise ValueError(f"unknown model operation {op!r}")

    def _sweep_compiled(self, sb: _SubBatch, proc: _BatchProc, pn: int) -> None:
        """The cursor form of :meth:`_sweep`: walk the compiled schedule.
        Op-for-op identical to the generator sweep (same draws, same
        order), minus generator resume and tuple re-construction."""
        ops = proc.ops
        n = len(ops)
        ip = proc.ip
        scoreboard = sb.scoreboard
        timing = self.timing
        rng = self.rng
        r = sb.size
        prof = self.profiler
        vtime = proc.vtime
        while ip < n:
            op = ops[ip]
            ip += 1
            kind = op[0]
            if kind == "serial":
                seconds = op[1]
                vtime = vtime + seconds
                proc.compute += seconds
            elif kind == "send":
                _k, dst, size, _label, payload, intra = op
                depart = vtime
                if prof is None:
                    cost = timing.local_send_times(
                        size, scoreboard.contention, rng, r, intra=intra
                    )
                else:
                    t0 = _perf_counter()
                    cost = timing.local_send_times(
                        size, scoreboard.contention, rng, r, intra=intra
                    )
                    prof.add("sample", _perf_counter() - t0)
                vtime = depart + cost
                proc.send_t += cost
                proc.sends += 1
                scoreboard.add(pn, dst, size, depart, intra=intra, payload=payload)
            else:  # recv: the decision point
                proc.blocked_src = op[1]
                proc.blocked_label = op[2]
                proc.vtime = vtime
                proc.block_start = vtime
                proc.ip = ip
                return
        proc.vtime = vtime
        proc.ip = ip
        proc.done = True

    def _match(self, sb: _SubBatch, program) -> list[_SubBatch] | None:
        """Process the match phase from ``sb.match_idx``; returns child
        sub-batches on divergence, ``None`` when the phase completes.

        Blocked processes are served in ascending process number -- the
        batch-mode convention (per-run block times cannot order a
        congruent batch).  Candidate *existence* is structural, so the
        same receives complete in every run.
        """
        while sb.match_idx < len(sb.blocked):
            pn = sb.blocked[sb.match_idx]
            proc = sb.procs[pn]
            if proc.blocked_src == ANY_SOURCE:
                heads = sb.scoreboard.heads_for_dst(pn)
                if not heads:
                    sb.match_idx += 1
                    continue
                if len(heads) == 1:
                    entry = heads[0]
                else:
                    # Sample every candidate's arrival (as the scalar
                    # engine does); ties and the argmin tie-break both
                    # resolve to the lowest message id because heads are
                    # in ascending-id order.
                    arr = np.stack([self._arrival(sb, e) for e in heads])
                    win = np.argmin(arr, axis=0)
                    winners = np.unique(win)
                    if len(winners) > 1:
                        return self._split(sb, pn, heads, win, winners, program)
                    entry = heads[int(winners[0])]
            else:
                entry = sb.scoreboard.oldest_for(proc.blocked_src, pn)
                if entry is None:
                    sb.match_idx += 1
                    continue
            self._complete(sb, pn, entry)
            sb.match_idx += 1
        return None

    def _complete(self, sb: _SubBatch, pn: int, entry: VectorEntry) -> None:
        """Finish process *pn*'s receive with *entry*, vectorised."""
        proc = sb.procs[pn]
        t_arr = self._arrival(sb, entry)
        completion = np.maximum(proc.vtime, t_arr)
        proc.wait += completion - proc.block_start
        proc.recvs += 1
        proc.vtime = completion
        proc.blocked_src = None
        info = MatchInfo(entry.src, entry.size, entry.payload)
        proc.resume_value = info
        proc.matches.append(info)
        sb.scoreboard.remove(entry.msg_id)
        sb.arrivals.pop(entry.msg_id, None)
        sb.runnable.append(pn)

    def _arrival(self, sb: _SubBatch, entry: VectorEntry) -> np.ndarray:
        """Sample (once) the arrival vector of a message -- the batched
        form of the scalar engine's ``arrival_of``, including NIC
        serialisation and the per-pair non-overtaking floor."""
        t = sb.arrivals.get(entry.msg_id)
        if t is not None:
            return t
        prof = self.profiler
        if prof is None:
            oneway = self.timing.one_way_times(
                entry.size, sb.scoreboard.contention, self.rng, sb.size,
                intra=entry.intra,
            )
        else:
            t0 = _perf_counter()
            oneway = self.timing.one_way_times(
                entry.size, sb.scoreboard.contention, self.rng, sb.size,
                intra=entry.intra,
            )
            prof.add("sample", _perf_counter() - t0)
        if entry.intra or self.nic_serialisation == "off":
            t = entry.depart + oneway
        else:
            gap = self.timing.serialisation_gap(entry.size)
            src_node = entry.src // self.ppn
            dst_node = entry.dst // self.ppn
            free = sb.tx_free.get(src_node)
            inject = (
                entry.depart if free is None else np.maximum(entry.depart, free)
            )
            sb.tx_free[src_node] = inject + gap
            t = inject + oneway
            if self.nic_serialisation == "txrx":
                floor = sb.rx_free.get(dst_node)
                if floor is None:
                    t = np.maximum(t, gap)
                else:
                    t = np.maximum(t, floor + gap)
                sb.rx_free[dst_node] = t
        key = (entry.src, entry.dst)
        prev = sb.last_arrival.get(key)
        if prev is not None:
            t = np.maximum(t, prev)
        sb.last_arrival[key] = t
        sb.arrivals[entry.msg_id] = t
        return t

    # -- divergence splitting -------------------------------------------------------
    def _split(
        self,
        sb: _SubBatch,
        pn: int,
        heads: list[VectorEntry],
        win: np.ndarray,
        winners: np.ndarray,
        program,
    ) -> list[_SubBatch]:
        """Partition *sb* by the message each run's wildcard receive
        matches; every child finishes process *pn*'s receive with its
        forced winner and resumes the match phase at the next process."""
        self.splits += len(winners) - 1
        children = []
        for w in winners:
            mask = win == w
            child = self._slice(sb, mask, program)
            forced = child.scoreboard._entries[heads[int(w)].msg_id]
            self._complete(child, pn, forced)
            child.match_idx = sb.match_idx + 1
            if child.size == 1:
                self.singleton_subbatches += 1
            children.append(child)
        return children

    def _slice(self, sb: _SubBatch, mask: np.ndarray, program) -> _SubBatch:
        """A congruent copy of *sb* restricted to the runs where *mask*
        holds, with process generators forked by replay."""
        child = _SubBatch()
        child.runs = sb.runs[mask]
        child.scoreboard = sb.scoreboard.split(mask)
        child.arrivals = {m: a[mask] for m, a in sb.arrivals.items()}
        child.last_arrival = {k: v[mask] for k, v in sb.last_arrival.items()}
        child.tx_free = {k: v[mask] for k, v in sb.tx_free.items()}
        child.rx_free = {k: v[mask] for k, v in sb.rx_free.items()}
        child.sweeps = sb.sweeps
        child.mode = sb.mode
        child.runnable = list(sb.runnable)
        child.blocked = list(sb.blocked)
        child.match_idx = sb.match_idx
        child.procs = [self._fork_proc(p, mask, program) for p in sb.procs]
        return child

    def _fork_proc(self, proc: _BatchProc, mask: np.ndarray, program) -> _BatchProc:
        """Clone one process: slice its vectors and rebuild its generator
        by replaying the recorded resume history.

        A generator cannot be copied, but model programs are
        deterministic functions of their context and the values resumed
        into them, so driving a fresh generator through the same history
        suspends it at the same yield.  Replay cost is proportional to
        the operations executed so far, paid once per (split, process).
        """
        ctx = proc.ctx
        clone = _BatchProc(ctx, None, 0)
        clone.ops = proc.ops
        clone.ip = proc.ip
        clone.done = proc.done
        clone.blocked_src = proc.blocked_src
        clone.blocked_label = proc.blocked_label
        clone.resume_value = proc.resume_value
        clone.n_yields = proc.n_yields
        clone.matches = list(proc.matches)
        clone.vtime = proc.vtime[mask]
        clone.compute = proc.compute[mask]
        clone.send_t = proc.send_t[mask]
        clone.wait = proc.wait[mask]
        clone.block_start = proc.block_start[mask]
        clone.sends = proc.sends
        clone.recvs = proc.recvs
        if proc.done or proc.ops is not None:
            # Compiled procs fork by copying the cursor -- the schedule
            # is immutable shared state, so no replay is needed.
            return clone
        gen = program(ctx)
        feed = iter(clone.matches)
        op = None
        try:
            for _ in range(proc.n_yields):
                value = next(feed) if op is not None and op[0] == "recv" else None
                op = gen.send(value)
        except StopIteration:
            raise RuntimeError(
                "model program is not deterministic under replay: generator "
                "finished early while forking a diverged sub-batch"
            ) from None
        clone.gen = gen
        return clone

    # -- results ---------------------------------------------------------------------
    def _orphans(self, sb: _SubBatch, j: int) -> list[ScoreboardEntry]:
        """Run *j*'s view of the messages still on the scoreboard."""
        return [
            ScoreboardEntry(
                msg_id=e.msg_id, src=e.src, dst=e.dst, size=e.size,
                depart_time=float(e.depart[j]), intra=e.intra,
                payload=e.payload,
            )
            for e in sb.scoreboard.entries()
        ]

    def _emit(self, sb: _SubBatch, results: list) -> None:
        """Unpack a finished sub-batch into per-run MachineResults."""
        finish = np.stack([p.vtime for p in sb.procs])
        elapsed = finish.max(axis=0)
        has_orphans = len(sb.scoreboard) > 0
        for j, run in enumerate(sb.runs):
            results[int(run)] = MachineResult(
                elapsed=float(elapsed[j]),
                finish_times=[float(p.vtime[j]) for p in sb.procs],
                compute_time=[float(p.compute[j]) for p in sb.procs],
                send_time=[float(p.send_t[j]) for p in sb.procs],
                recv_wait_time=[float(p.wait[j]) for p in sb.procs],
                messages=sb.scoreboard.total_added,
                peak_contention=sb.scoreboard.peak,
                sweeps=sb.sweeps,
                orphans=self._orphans(sb, j) if has_orphans else [],
                trace=None,
            )
