"""Event tracing and performance-loss attribution.

Section 5: "because all of these events can be annotated, PEVPM is capable
of automatically determining and highlighting the location and extent of
performance loss due to any source."  The :class:`TraceRecorder` collects
per-process (category, label, start, end) intervals during a traced
virtual-machine run; :class:`LossReport` turns them into the attribution
the paper describes: how much of each process's time went to computation,
to send overhead, and to *waiting* at each annotated receive -- the losses.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from .._tables import format_table, format_time

__all__ = ["TraceEvent", "TraceRecorder", "LossReport"]


@dataclass(frozen=True)
class TraceEvent:
    proc: int
    category: str  #: "serial" | "send" | "recv"
    label: str  #: user / directive annotation
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class TraceRecorder:
    """Accumulates trace events during a virtual-machine run."""

    def __init__(self):
        self.events: list[TraceEvent] = []

    def record(self, proc: int, category: str, label: str, start: float, end: float) -> None:
        self.events.append(TraceEvent(proc, category, label, start, end))

    def __len__(self) -> int:
        return len(self.events)

    def for_proc(self, proc: int) -> list[TraceEvent]:
        return [e for e in self.events if e.proc == proc]

    def by_label(self) -> dict[tuple[str, str], float]:
        """Total time per (category, label) across all processes."""
        totals: dict[tuple[str, str], float] = defaultdict(float)
        for e in self.events:
            totals[(e.category, e.label)] += e.duration
        return dict(totals)


class LossReport:
    """Performance-loss attribution over a traced run.

    *elapsed* is the run's virtual completion time; anything a process
    spent not computing is a loss, broken down by the annotation labels.
    """

    def __init__(self, trace: TraceRecorder, elapsed: float, nprocs: int):
        if elapsed < 0:
            raise ValueError("elapsed must be non-negative")
        self.trace = trace
        self.elapsed = elapsed
        self.nprocs = nprocs

    # -- aggregates ------------------------------------------------------------
    def per_process(self) -> list[dict[str, float]]:
        """compute/send/wait/idle seconds per process.

        'idle' is time between a process's finish and the slowest process's
        finish -- load imbalance loss.
        """
        out = []
        for p in range(self.nprocs):
            events = self.trace.for_proc(p)
            compute = sum(e.duration for e in events if e.category == "serial")
            send = sum(e.duration for e in events if e.category == "send")
            wait = sum(e.duration for e in events if e.category == "recv")
            finish = max((e.end for e in events), default=0.0)
            out.append(
                {
                    "compute": compute,
                    "send": send,
                    "wait": wait,
                    "idle": max(0.0, self.elapsed - finish),
                }
            )
        return out

    def total_loss_fraction(self) -> float:
        """Fraction of aggregate processor time lost to anything but
        computation -- the headline number."""
        per = self.per_process()
        total = self.elapsed * self.nprocs
        if total == 0:
            return 0.0
        compute = sum(p["compute"] for p in per)
        return 1.0 - compute / total

    def hotspots(self, top: int = 5) -> list[tuple[str, str, float]]:
        """The annotation labels costing the most aggregate time,
        excluding computation -- where to look first."""
        items = [
            (cat, label, t)
            for (cat, label), t in self.trace.by_label().items()
            if cat != "serial"
        ]
        items.sort(key=lambda x: x[2], reverse=True)
        return items[:top]

    # -- rendering -----------------------------------------------------------------
    def format(self) -> str:
        per = self.per_process()
        rows = []
        for p, d in enumerate(per):
            rows.append(
                [
                    str(p),
                    format_time(d["compute"]),
                    format_time(d["send"]),
                    format_time(d["wait"]),
                    format_time(d["idle"]),
                ]
            )
        table = format_table(
            ["proc", "compute", "send", "recv wait", "imbalance idle"],
            rows,
            title="PEVPM performance-loss attribution",
        )
        hot = self.hotspots()
        lines = [table, ""]
        lines.append(f"aggregate loss fraction: {self.total_loss_fraction() * 100:.1f}%")
        if hot:
            lines.append("top loss sites:")
            for cat, label, t in hot:
                lines.append(f"  {cat:5s} {label!r}: {format_time(t)} total")
        return "\n".join(lines)
