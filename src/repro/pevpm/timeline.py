"""Text timeline rendering of PEVPM traces.

Turns a traced virtual-machine run into a Gantt-style character plot, one
row per process, so the *time structure* PEVPM simulates (Section 5: it
"simulate[s] the time-structure of the program") can actually be looked
at: where computation happens, where sends sit, and where processes stall
waiting for messages -- the visual form of the loss attribution.

Legend: ``#`` computing, ``s`` in a send call, ``.`` waiting at a
receive, `` `` (space) idle / finished.
"""

from __future__ import annotations

from .trace import TraceRecorder

__all__ = ["render_timeline", "iteration_profile", "render_run_spread"]

_GLYPH = {"serial": "#", "send": "s", "recv": "."}


def render_timeline(
    trace: TraceRecorder,
    nprocs: int,
    width: int = 80,
    t_start: float = 0.0,
    t_end: float | None = None,
) -> str:
    """Render the trace as one character row per process.

    Each column covers ``(t_end - t_start) / width`` of virtual time; the
    glyph shown is the activity covering the column's midpoint (later
    events win ties).  Restrict ``t_start``/``t_end`` to zoom into a few
    iterations -- whole-run renders of long programs just look striped.
    """
    if width < 2:
        raise ValueError("width must be >= 2")
    if not trace.events:
        raise ValueError("trace is empty (was the run traced?)")
    if t_end is None:
        t_end = max(e.end for e in trace.events)
    if t_end <= t_start:
        raise ValueError("t_end must exceed t_start")
    span = t_end - t_start
    dt = span / width

    rows = []
    for p in range(nprocs):
        cells = [" "] * width
        for e in trace.for_proc(p):
            if e.end <= t_start or e.start >= t_end:
                continue
            first = max(0, int((e.start - t_start) / dt))
            last = min(width - 1, int((e.end - t_start) / dt))
            glyph = _GLYPH.get(e.category, "?")
            for c in range(first, last + 1):
                mid = t_start + (c + 0.5) * dt
                if e.start <= mid < e.end:
                    cells[c] = glyph
        rows.append(f"p{p:<3d}|" + "".join(cells) + "|")

    from .._tables import format_time

    header = (
        f"timeline {format_time(t_start)} .. {format_time(t_end)} "
        f"({format_time(dt)}/column)   # compute  s send  . recv-wait"
    )
    return "\n".join([header, *rows])


def render_run_spread(times, width: int = 50, bins: int = 12) -> str:
    """Render the spread of per-run predicted times as a text histogram.

    The per-run engine is usually run a handful of times, but batch mode
    (``vector_runs=True``) makes dozens or hundreds of Monte Carlo runs
    cheap, at which point the *distribution* of completion times becomes
    worth looking at, not just the mean -- this gives it the same ASCII
    treatment :func:`repro.mpibench.report.pdf_plots` gives benchmark
    distributions.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if bins < 1:
        raise ValueError("bins must be >= 1")
    values = sorted(float(t) for t in times)
    if not values:
        raise ValueError("times is empty")

    from .._tables import format_time

    lo, hi = values[0], values[-1]
    if hi <= lo:
        return (
            f"run spread ({len(values)} runs): all at {format_time(lo)}"
        )
    step = (hi - lo) / bins
    counts = [0] * bins
    for v in values:
        counts[min(bins - 1, int((v - lo) / step))] += 1
    peak = max(counts)
    rows = [
        f"{format_time(lo + i * step):>10} |{'#' * round(c / peak * width):<{width}}| {c}"
        for i, c in enumerate(counts)
    ]
    header = (
        f"run spread: {len(values)} runs, "
        f"min {format_time(lo)}  max {format_time(hi)}"
    )
    return "\n".join([header, *rows])


def iteration_profile(
    trace: TraceRecorder, proc: int, marker_label: str
) -> list[float]:
    """Durations between successive occurrences of one annotation on one
    process -- e.g. per-iteration times, using the Serial directive's
    label as the iteration marker."""
    starts = [
        e.start for e in trace.for_proc(proc) if e.label == marker_label
    ]
    if len(starts) < 2:
        raise ValueError(
            f"label {marker_label!r} occurs {len(starts)} time(s) on "
            f"process {proc}; need at least 2"
        )
    return [b - a for a, b in zip(starts, starts[1:])]
