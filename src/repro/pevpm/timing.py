"""Timing models: where PEVPM gets its operation times from.

The paper's headline methodological claim (Figure 6) is a comparison of
*timing sources* inside the same virtual machine:

* sampling from full probability **distributions**, conditioned on message
  size and current contention (the accurate method);
* using **average** times -- from a 2x1 ping-pong benchmark (what other
  tools provide) or from a contention-matched n x p benchmark;
* using **minimum** times (ideal, contention-free);
* a **parametric** variant sampling from fitted standard functions
  (Section 2's "parametrised functions to model the PDFs");
* a **Hockney** ``T = l + b/W`` analytic model (Section 3's common
  approximation), fitted from benchmark data by :mod:`repro.models.hockney`.

Every model answers two questions for the virtual machine:

* :meth:`~TimingModel.one_way_time` -- time from send initiation to
  receive completion (what MPIBench's synchronised clock measures);
* :meth:`~TimingModel.local_send_time` -- how long the *sender* is busy in
  the send call (measured by MPIBench as ``isend_local``).
"""

from __future__ import annotations

import abc
import hashlib
import pickle

import numpy as np

from ..mpibench.distfit import ParametricFit, fit_samples
from ..mpibench.results import DistributionDB

__all__ = [
    "TimingModel",
    "DistributionTiming",
    "AverageTiming",
    "MinimumTiming",
    "ParametricTiming",
    "HockneyTiming",
    "clamp_times",
    "timing_from_db",
]

ONEWAY_OP = "isend"
LOCAL_OP = "isend_local"


def clamp_times(value):
    """Clamp sampled operation times to be non-negative.

    Fitted parametric tails (and histogram bins widened around a
    degenerate support) can dip marginally below zero; a communication
    time cannot.  Accepts a scalar or an ``(n,)`` vector draw and
    preserves the input's form.
    """
    if isinstance(value, np.ndarray):
        return np.maximum(value, 0.0)
    return value if value > 0.0 else 0.0


class TimingModel(abc.ABC):
    """Source of operation times for the virtual parallel machine."""

    #: short name used in reports / figure legends
    name: str = "timing"

    @abc.abstractmethod
    def one_way_time(
        self, size: int, contention: int, rng: np.random.Generator,
        intra: bool = False,
    ) -> float:
        """Send-initiation to receive-completion time for one message.

        *intra* marks intra-node (shared-memory) messages, which live on a
        different time scale than wire messages."""

    @abc.abstractmethod
    def local_send_time(
        self, size: int, contention: int, rng: np.random.Generator,
        intra: bool = False,
    ) -> float:
        """Time the sending process is occupied by the send call."""

    # -- batch API (the vectorised virtual machine's hot path) ------------------
    #
    # ``one_way_times``/``local_send_times`` answer the same questions as
    # their scalar forms but for *n* Monte Carlo runs at once, returning
    # an ``(n,)`` vector.  The defaults loop over the scalar methods so
    # every model supports batching; data-driven subclasses override with
    # genuinely vectorised draws.  Batch draws consume the generator's
    # bit stream differently from the scalar path -- batch-mode
    # evaluation defines its own seed-stream convention (see DESIGN.md).

    def one_way_times(
        self, size: int, contention: int, rng: np.random.Generator,
        n: int, intra: bool = False,
    ) -> np.ndarray:
        """One-way times for *n* runs at one (size, contention) point."""
        return np.array([
            self.one_way_time(size, contention, rng, intra=intra)
            for _ in range(n)
        ])

    def local_send_times(
        self, size: int, contention: int, rng: np.random.Generator,
        n: int, intra: bool = False,
    ) -> np.ndarray:
        """Local send occupancies for *n* runs at once."""
        return np.array([
            self.local_send_time(size, contention, rng, intra=intra)
            for _ in range(n)
        ])

    def reset(self) -> None:
        """Discard any cached sampling state.  Called by the virtual
        machine at the start of every run so that identical (seed, model)
        evaluations draw identical samples regardless of what was sampled
        before."""

    def _fingerprint_state(self):
        """Model-specific identity beyond the class and name; subclasses
        return whatever determines the times they produce (fitted
        parameters, the backing database, ...)."""
        return None

    def fingerprint(self) -> str:
        """Stable content hash identifying the times this model produces.

        Used to key the on-disk prediction cache: two models with the
        same fingerprint are interchangeable as timing sources.
        """
        state = (type(self).__qualname__, self.name, self._fingerprint_state())
        try:
            blob = pickle.dumps(state, protocol=4)
        except Exception:
            blob = repr(state).encode()
        return hashlib.sha256(blob).hexdigest()

    def serialisation_gap(self, size: int, intra: bool = False) -> float:
        """Minimum spacing between successive messages through one NIC.

        The virtual machine uses this to model back-to-back sends from (or
        arrivals at) a single process: an MPI_Send returns once the data is
        buffered, but the NIC drains at wire speed, so the *next* message
        cannot depart until this one has.  Data-driven implementations
        derive it from contention-free benchmarks as
        ``min_one_way(size) - min_one_way(smallest size)`` -- the size-
        dependent part of the minimum time is exactly the serialisation.
        The default (no information) is zero.
        """
        return 0.0


class _DbGapMixin:
    """Shared data-driven serialisation-gap estimate for DB-backed models.

    Uses the contention-free (smallest) benchmark configuration: the
    minimum one-way time as a function of size is latency plus wire
    serialisation, so its increase over the smallest measured size is the
    per-message NIC occupancy.  Linear interpolation between measured
    sizes; cached per size.
    """

    db: DistributionDB
    _gap_cache: dict

    def _fingerprint_state(self):
        return (self.db.fingerprint(), getattr(self, "fixed_contention", None))

    def serialisation_gap(self, size: int, intra: bool = False) -> float:
        cache = getattr(self, "_gap_cache", None)
        if cache is None:
            cache = self._gap_cache = {}
        gap = cache.get((size, intra))
        if gap is None:
            nodes, ppn = self.db.nearest_config(ONEWAY_OP, 2, intra=intra)
            result = self.db.result(ONEWAY_OP, nodes, ppn)
            sizes = result.sizes
            base = result.histograms[sizes[0]].min
            lo, hi = self.db.bracketing_sizes(ONEWAY_OP, size, nodes, ppn)
            mlo = result.histograms[lo].min
            mhi = result.histograms[hi].min
            if hi == lo:
                m = mlo
            else:
                w = (size - lo) / (hi - lo)
                m = (1.0 - w) * mlo + w * mhi
            gap = clamp_times(m - base)
            cache[(size, intra)] = gap
        return gap


class DistributionTiming(_DbGapMixin, TimingModel):
    """Sample from MPIBench histograms, contention-aware (the PEVPM way).

    *fixed_contention* pins the benchmark configuration regardless of the
    scoreboard (used for the '2x1 distribution' ablation); ``None`` means
    use the live contention level.

    Every draw -- the scalar buffered path and the vectorised batch
    methods alike -- goes through ``DistributionDB.sample_times``, which
    resolves each (op, size, contention, intra) cell to a cached
    inverse-CDF lookup table (:meth:`~repro.mpibench.results.DistributionDB.make_sampler`)
    bound once per cell: a draw is one uniform batch plus one or two
    table gathers, bit-identical to the uncached arithmetic.
    """

    #: initial draws pre-sampled per (op, size, contention) key; PEVPM
    #: consumes millions of samples per study, so batching the
    #: inverse-CDF work matters (see the eval-cost benchmark).  Each
    #: refill doubles the key's buffer up to :attr:`BATCH_MAX`, so hot
    #: keys amortise towards pure vectorised sampling while one-shot
    #: keys (a single barrier message) never over-draw.
    BATCH = 64
    BATCH_MAX = 8192

    def __init__(
        self,
        db: DistributionDB,
        fixed_contention: int | None = None,
        pattern: str = "pairs",
    ):
        self.db = db
        self.fixed_contention = fixed_contention
        self.name = (
            "dist-nxp" if fixed_contention is None else f"dist-{fixed_contention}"
        )
        # Pattern-matched sampling: a model of neighbour-local code can ask
        # for ring-pattern distributions ("isend:ring") when the DB has
        # them; fall back to the default pairs pattern otherwise.
        self._oneway_op = ONEWAY_OP
        self._local_op = LOCAL_OP
        if pattern != "pairs":
            self.name += f"-{pattern}"
            candidate = f"{ONEWAY_OP}:{pattern}"
            if candidate in db.ops():
                self._oneway_op = candidate
                self._local_op = f"{LOCAL_OP}:{pattern}"
        self._buffers: dict[tuple, tuple] = {}

    def _contention(self, contention: int) -> int:
        return self.fixed_contention if self.fixed_contention is not None else contention

    def reset(self) -> None:
        self._buffers.clear()

    def _draw(self, op, size, contention, rng, intra):
        c = self._contention(contention)
        # Key on the raw contention level (it determines the benchmark
        # config deterministically) to keep the hot path free of config
        # lookups.
        key = (op, size, c, intra)
        buf = self._buffers.get(key)
        if buf is None or buf[1] >= len(buf[0]):
            batch = (
                self.BATCH
                if buf is None
                else min(2 * len(buf[0]), self.BATCH_MAX)
            )
            values = self.db.sample_times(op, size, c, rng, batch, intra=intra)
            buf = [values, 0]
            self._buffers[key] = buf
        value = float(buf[0][buf[1]])
        buf[1] += 1
        return value

    def one_way_time(self, size, contention, rng, intra=False):
        return self._draw(self._oneway_op, size, contention, rng, intra)

    def local_send_time(self, size, contention, rng, intra=False):
        return self._draw(self._local_op, size, contention, rng, intra)

    # Batch draws go straight to the vectorised DB sampler: exactly *n*
    # inverse-CDF draws, no per-key buffers (the buffers exist to amortise
    # scalar calls; a batch call is already amortised).
    def one_way_times(self, size, contention, rng, n, intra=False):
        return clamp_times(self.db.sample_times(
            self._oneway_op, size, self._contention(contention), rng, n,
            intra=intra,
        ))

    def local_send_times(self, size, contention, rng, n, intra=False):
        return clamp_times(self.db.sample_times(
            self._local_op, size, self._contention(contention), rng, n,
            intra=intra,
        ))


class AverageTiming(_DbGapMixin, TimingModel):
    """Use mean times -- what conventional benchmarks offer (Figure 6's
    'avg' ablations).  *fixed_contention* = 2 models ping-pong data;
    setting it to the job's process count models 'avg n x p' data."""

    def __init__(self, db: DistributionDB, fixed_contention: int = 2):
        self.db = db
        self.fixed_contention = fixed_contention
        self.name = f"avg-{fixed_contention}"

    def one_way_time(self, size, contention, rng, intra=False):
        return self.db.mean_time(ONEWAY_OP, size, self.fixed_contention, intra=intra)

    def local_send_time(self, size, contention, rng, intra=False):
        return self.db.mean_time(LOCAL_OP, size, self.fixed_contention, intra=intra)

    def one_way_times(self, size, contention, rng, n, intra=False):
        return np.full(n, self.one_way_time(size, contention, rng, intra=intra))

    def local_send_times(self, size, contention, rng, n, intra=False):
        return np.full(n, self.local_send_time(size, contention, rng, intra=intra))


class MinimumTiming(_DbGapMixin, TimingModel):
    """Use minimum (contention-free) times -- the most optimistic source."""

    def __init__(self, db: DistributionDB, fixed_contention: int = 2):
        self.db = db
        self.fixed_contention = fixed_contention
        self.name = f"min-{fixed_contention}"

    def one_way_time(self, size, contention, rng, intra=False):
        return self.db.min_time(ONEWAY_OP, size, self.fixed_contention, intra=intra)

    def local_send_time(self, size, contention, rng, intra=False):
        return self.db.min_time(LOCAL_OP, size, self.fixed_contention, intra=intra)

    def one_way_times(self, size, contention, rng, n, intra=False):
        return np.full(n, self.one_way_time(size, contention, rng, intra=intra))

    def local_send_times(self, size, contention, rng, n, intra=False):
        return np.full(n, self.local_send_time(size, contention, rng, intra=intra))


class ParametricTiming(_DbGapMixin, TimingModel):
    """Sample from standard functions fitted to the measured histograms.

    Cheaper to store than histograms and smooth in the tails; fits are
    computed lazily per (op, config, size) and cached.
    """

    def __init__(self, db: DistributionDB, fixed_contention: int | None = None):
        self.db = db
        self.fixed_contention = fixed_contention
        self.name = "parametric"
        self._fits: dict[tuple, ParametricFit] = {}

    def _fit(self, op: str, size: int, contention: int, intra: bool = False) -> ParametricFit:
        c = self.fixed_contention if self.fixed_contention is not None else contention
        nodes, ppn = self.db.nearest_config(op, max(2, c), intra=intra)
        lo, hi = self.db.bracketing_sizes(op, size, nodes, ppn)
        nearest = lo if abs(size - lo) <= abs(hi - size) else hi
        key = (op, nodes, ppn, nearest)
        fit = self._fits.get(key)
        if fit is None:
            hist = self.db.result(op, nodes, ppn).histograms[nearest]
            if hist.samples is None:
                raise ValueError(
                    "ParametricTiming needs histograms with retained samples"
                )
            fit = fit_samples(hist.samples)
            self._fits[key] = fit
        return fit

    def one_way_time(self, size, contention, rng, intra=False):
        return clamp_times(self._fit(ONEWAY_OP, size, contention, intra).sample(rng))

    def local_send_time(self, size, contention, rng, intra=False):
        return clamp_times(self._fit(LOCAL_OP, size, contention, intra).sample(rng))

    def one_way_times(self, size, contention, rng, n, intra=False):
        return clamp_times(
            self._fit(ONEWAY_OP, size, contention, intra).sample(rng, size=n)
        )

    def local_send_times(self, size, contention, rng, n, intra=False):
        return clamp_times(
            self._fit(LOCAL_OP, size, contention, intra).sample(rng, size=n)
        )


class HockneyTiming(TimingModel):
    """The analytic ``T = l + b/W`` model of Section 3.

    Deterministic and contention-blind: the classic textbook approximation
    that PEVPM's distribution sampling is shown to beat.  *send_fraction*
    is the share of the one-way time the sender is occupied for (the local
    overhead of an eager send).
    """

    def __init__(self, latency: float, bandwidth: float, send_fraction: float = 0.3):
        if latency < 0 or bandwidth <= 0:
            raise ValueError("need latency >= 0 and bandwidth > 0")
        if not 0.0 <= send_fraction <= 1.0:
            raise ValueError("send_fraction must be in [0, 1]")
        self.latency = latency
        self.bandwidth = bandwidth
        self.send_fraction = send_fraction
        self.name = "hockney"

    def _fingerprint_state(self):
        return (self.latency, self.bandwidth, self.send_fraction)

    def one_way_time(self, size, contention, rng, intra=False):
        return self.latency + size / self.bandwidth

    def local_send_time(self, size, contention, rng, intra=False):
        return self.send_fraction * self.one_way_time(size, contention, rng)

    def one_way_times(self, size, contention, rng, n, intra=False):
        return np.full(n, self.one_way_time(size, contention, rng, intra=intra))

    def local_send_times(self, size, contention, rng, n, intra=False):
        return np.full(n, self.local_send_time(size, contention, rng, intra=intra))

    def serialisation_gap(self, size, intra=False):
        return 0.0 if intra else size / self.bandwidth


def timing_from_db(
    db: DistributionDB,
    mode: str = "distribution",
    source: str = "nxp",
    nprocs: int | None = None,
) -> TimingModel:
    """Build the timing model for one of the paper's Figure 6 variants.

    *mode* in {"distribution", "average", "minimum", "parametric"};
    *source* "nxp" (contention-matched benchmarks) or "2x1" (ping-pong).
    For fixed-source averages of an n x p run, pass the job's *nprocs*.
    """
    if source not in ("nxp", "2x1"):
        raise ValueError(f"unknown source {source!r}")
    if source == "2x1":
        fixed = 2
    elif mode == "distribution" or mode == "parametric":
        fixed = None  # live scoreboard contention
    else:
        if nprocs is None:
            raise ValueError("average/minimum n x p timing needs nprocs")
        fixed = nprocs
    if mode == "distribution":
        return DistributionTiming(db, fixed_contention=fixed)
    if mode == "average":
        return AverageTiming(db, fixed_contention=fixed if fixed is not None else 2)
    if mode == "minimum":
        return MinimumTiming(db, fixed_contention=fixed if fixed is not None else 2)
    if mode == "parametric":
        return ParametricTiming(db, fixed_contention=fixed)
    raise ValueError(f"unknown timing mode {mode!r}")
