"""PEVPM directive IR: the building blocks of a performance model.

Section 5: "PEVPM is based on a set of parallel program primitives, or
building blocks, that can be used to compose the computation and
communication structure of any message-passing parallel program."  The
four directives of the paper's Figure 5 are:

* ``Loop``   -- iteration (``// PEVPM Loop iterations = 1000``);
* ``Runon``  -- code that runs only on processes satisfying a condition,
  with one block per condition (an if / else-if chain);
* ``Message``-- a message transfer of a given type/size between ``from``
  and ``to`` processes;
* ``Serial`` -- a serial computation segment with a symbolic time.

All numeric/boolean fields are *symbolic expressions* over ``procnum``,
``numprocs``, the loop variable ``iteration`` and user parameters (see
:mod:`repro.pevpm.expr`), so one model re-evaluates across machine sizes.
Interpretation happens in :mod:`repro.pevpm.machine`.
"""

from __future__ import annotations

import enum

from .expr import compile_expr

__all__ = [
    "ModelError",
    "MessageKind",
    "COLLECTIVE_OPS",
    "Directive",
    "Block",
    "Serial",
    "Message",
    "Collective",
    "Loop",
    "Runon",
    "validate_model",
]


class ModelError(ValueError):
    """A structurally invalid PEVPM model."""


class MessageKind(enum.Enum):
    SEND = "MPI_Send"
    ISEND = "MPI_Isend"
    RECV = "MPI_Recv"
    IRECV = "MPI_Irecv"

    @property
    def is_send(self) -> bool:
        return self in (MessageKind.SEND, MessageKind.ISEND)

    @classmethod
    def parse(cls, text: str) -> "MessageKind":
        for kind in cls:
            if kind.value.lower() == text.strip().lower():
                return kind
        raise ModelError(f"unknown message type {text!r}")


class Directive:
    """Base class for all IR nodes."""

    __slots__ = ("line",)

    def __init__(self, line: int = 0):
        self.line = line  #: source line for error messages


class Block(Directive):
    """A sequence of directives."""

    __slots__ = ("children",)

    def __init__(self, children: list[Directive] | None = None, line: int = 0):
        super().__init__(line)
        self.children: list[Directive] = list(children or [])

    def __repr__(self) -> str:
        return f"Block({len(self.children)} children)"


class Serial(Directive):
    """A serial computation segment: ``Serial on <machine> time = <expr>``."""

    __slots__ = ("time", "machine", "_time_ast")

    def __init__(self, time: str, machine: str = "", line: int = 0):
        super().__init__(line)
        self.time = time
        self.machine = machine
        self._time_ast = compile_expr(time)

    def __repr__(self) -> str:
        return f"Serial(time={self.time!r})"


class Message(Directive):
    """A message transfer: type, size, from, to (all but type symbolic)."""

    __slots__ = ("kind", "size", "src", "dst", "_size_ast", "_src_ast", "_dst_ast")

    def __init__(self, kind: MessageKind | str, size: str, src: str, dst: str, line: int = 0):
        super().__init__(line)
        self.kind = MessageKind.parse(kind) if isinstance(kind, str) else kind
        self.size = size
        self.src = src
        self.dst = dst
        self._size_ast = compile_expr(size)
        self._src_ast = compile_expr(src)
        self._dst_ast = compile_expr(dst)

    def __repr__(self) -> str:
        return (
            f"Message({self.kind.value}, size={self.size!r}, "
            f"from={self.src!r}, to={self.dst!r})"
        )


#: collective operations expressible as directives.  Each lowers to the
#: exact point-to-point schedule of :mod:`repro.smpi.collectives`
#: (binomial trees, reduce+bcast, ring) in :mod:`repro.pevpm.interpreter`.
COLLECTIVE_OPS = ("bcast", "reduce", "allreduce", "allgather")

#: collectives with a meaningful root process (the others involve every
#: rank symmetrically and reject an explicit root)
ROOTED_OPS = ("bcast", "reduce")


class Collective(Directive):
    """A collective operation over all processes: ``coll_<op> size = <expr>``.

    Unlike :class:`Message`, a collective is *unguarded*: every process
    executes the directive (as MPI requires), and the interpreter lowers
    it to that rank's slice of the classic point-to-point schedule --
    binomial tree for bcast/reduce, reduce-to-root + bcast for
    allreduce, ring for allgather -- mirroring
    :mod:`repro.smpi.collectives` operation for operation.  Because the
    lowered schedule is ordinary send/recv/serial ops with fixed
    sources, all three engines (scalar, batched, compiled) execute it
    with zero new semantics, bit-identically.
    """

    __slots__ = ("op", "size", "root", "_size_ast", "_root_ast")

    def __init__(self, op: str, size: str, root: str = "0", line: int = 0):
        super().__init__(line)
        name = op.strip().lower()
        if name.startswith("coll_"):
            name = name[len("coll_"):]
        if name not in COLLECTIVE_OPS:
            raise ModelError(
                f"unknown collective {op!r}; expected one of "
                f"{', '.join('coll_' + o for o in COLLECTIVE_OPS)}"
            )
        self.op = name
        self.size = size
        self.root = root
        self._size_ast = compile_expr(size)
        self._root_ast = compile_expr(root)

    def __repr__(self) -> str:
        return f"Collective({self.op}, size={self.size!r}, root={self.root!r})"


class Loop(Directive):
    """Iteration: ``Loop iterations = <expr>`` over a body block."""

    __slots__ = ("iterations", "body", "_iter_ast")

    def __init__(self, iterations: str, body: Block | None = None, line: int = 0):
        super().__init__(line)
        self.iterations = iterations
        self._iter_ast = compile_expr(iterations)
        self.body = body or Block()

    def __repr__(self) -> str:
        return f"Loop(iterations={self.iterations!r})"


class Runon(Directive):
    """Conditional execution: conditions c1..cN with one block each.

    Semantically an if / else-if chain: the first true condition's block
    runs (the paper's even/odd Jacobi split is exactly this).
    """

    __slots__ = ("conditions", "blocks", "_cond_asts")

    def __init__(
        self,
        conditions: list[str],
        blocks: list[Block] | None = None,
        line: int = 0,
    ):
        super().__init__(line)
        if not conditions:
            raise ModelError("Runon needs at least one condition")
        self.conditions = list(conditions)
        self._cond_asts = [compile_expr(c) for c in conditions]
        self.blocks = list(blocks or [])

    def __repr__(self) -> str:
        return f"Runon({len(self.conditions)} conditions)"


def validate_model(root: Block) -> None:
    """Structural validation of a model tree.

    Checks: Runon block counts match condition counts; expressions compile
    (done eagerly at construction); nesting is made of known node types.
    Raises :class:`ModelError` with the offending line.
    """

    def walk(node: Directive) -> None:
        if isinstance(node, Block):
            for child in node.children:
                walk(child)
        elif isinstance(node, Loop):
            walk(node.body)
        elif isinstance(node, Runon):
            if len(node.blocks) != len(node.conditions):
                raise ModelError(
                    f"line {node.line}: Runon has {len(node.conditions)} "
                    f"condition(s) but {len(node.blocks)} block(s)"
                )
            for block in node.blocks:
                walk(block)
        elif isinstance(node, (Serial, Message, Collective)):
            pass
        else:
            raise ModelError(f"unknown directive node {type(node).__name__}")

    if not isinstance(root, Block):
        raise ModelError("model root must be a Block")
    walk(root)
