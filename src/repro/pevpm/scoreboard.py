"""The PEVPM contention scoreboard.

Section 5: "PEVPM maintains a contention scoreboard that stores the state
of all outstanding communication operations at any point in the
simulation, including message sources and destinations, departure times
and sizes. ... These probability distributions are a function of message
size and the total number of messages on the scoreboard (i.e. contention
level)."

The scoreboard is the bridge between program structure and timing: the
sweep phase adds every message a process sends; the match phase samples an
arrival time for a message using the *current scoreboard population* as
the contention level, then removes it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

__all__ = ["ScoreboardEntry", "Scoreboard", "VectorEntry", "VectorScoreboard"]


@dataclass(frozen=True)
class ScoreboardEntry:
    """One outstanding (in-flight) message."""

    msg_id: int
    src: int
    dst: int
    size: int
    depart_time: float
    op: str = "isend"
    intra: bool = False  #: intra-node (shared-memory) message
    #: model-level payload forwarded to the receiver's MatchInfo; carries
    #: no simulated bytes (size alone determines timing).
    payload: object = None

    def __post_init__(self):
        if self.size < 0:
            raise ValueError("message size must be non-negative")
        if self.depart_time < 0:
            raise ValueError("departure time must be non-negative")


class Scoreboard:
    """Outstanding-message bookkeeping with FIFO per (src, dst) pair."""

    def __init__(self):
        self._entries: dict[int, ScoreboardEntry] = {}
        self._ids = itertools.count()
        self._inter_count = 0  #: outstanding inter-node messages
        self.peak = 0  #: highest population seen (diagnostics)
        self.total_added = 0

    # -- sweep side -------------------------------------------------------------
    def add(
        self,
        src: int,
        dst: int,
        size: int,
        depart_time: float,
        op: str = "isend",
        intra: bool = False,
        payload: object = None,
    ) -> ScoreboardEntry:
        """Record a message entering the network; returns its entry."""
        entry = ScoreboardEntry(
            msg_id=next(self._ids),
            src=src,
            dst=dst,
            size=size,
            depart_time=depart_time,
            op=op,
            intra=intra,
            payload=payload,
        )
        self._entries[entry.msg_id] = entry
        self.total_added += 1
        if not intra:
            self._inter_count += 1
        if len(self._entries) > self.peak:
            self.peak = len(self._entries)
        return entry

    # -- match side --------------------------------------------------------------
    def remove(self, msg_id: int) -> ScoreboardEntry:
        """Remove a matched message."""
        try:
            entry = self._entries.pop(msg_id)
        except KeyError:
            raise KeyError(f"message {msg_id} not on the scoreboard") from None
        if not entry.intra:
            self._inter_count -= 1
        return entry

    def oldest_for(self, src: int, dst: int) -> ScoreboardEntry | None:
        """The earliest-departed outstanding message from src to dst --
        MPI's non-overtaking rule applied at the model level."""
        best = None
        for e in self._entries.values():
            if e.src == src and e.dst == dst:
                if best is None or (e.depart_time, e.msg_id) < (best.depart_time, best.msg_id):
                    best = e
        return best

    def any_for_dst(self, dst: int) -> list[ScoreboardEntry]:
        """All outstanding messages addressed to *dst* (for wildcard
        receives), oldest first."""
        entries = [e for e in self._entries.values() if e.dst == dst]
        entries.sort(key=lambda e: (e.depart_time, e.msg_id))
        return entries

    # -- contention ----------------------------------------------------------------
    @property
    def contention(self) -> int:
        """The contention level: outstanding messages crossing the
        network.  Intra-node (shared-memory) messages are excluded -- they
        do not load the fabric, and the simulated ground truth's
        ``active_transfers`` counter excludes them too."""
        return self._inter_count

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, msg_id: int) -> bool:
        return msg_id in self._entries

    def entries(self) -> list[ScoreboardEntry]:
        """Snapshot of all outstanding messages (oldest first)."""
        return sorted(self._entries.values(), key=lambda e: (e.depart_time, e.msg_id))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Scoreboard outstanding={len(self)} peak={self.peak}>"


class VectorEntry:
    """One outstanding message across a *batch* of Monte Carlo runs.

    Identical to :class:`ScoreboardEntry` except that ``depart`` is an
    ``(r,)`` array -- one departure time per run in the (sub-)batch.  The
    message's identity (src, dst, size, program position) is *structural*:
    within a congruent sub-batch every run sends the same messages in the
    same order, only their clock values differ.
    """

    __slots__ = ("msg_id", "src", "dst", "size", "depart", "intra", "payload")

    def __init__(self, msg_id, src, dst, size, depart, intra=False, payload=None):
        self.msg_id = msg_id
        self.src = src
        self.dst = dst
        self.size = size
        self.depart = depart
        self.intra = intra
        self.payload = payload

    def sliced(self, index) -> "VectorEntry":
        """The same message restricted to the runs selected by *index*."""
        return VectorEntry(
            self.msg_id, self.src, self.dst, self.size,
            self.depart[index], self.intra, self.payload,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<VectorEntry #{self.msg_id} {self.src}->{self.dst} "
            f"size={self.size} runs={len(self.depart)}>"
        )


class VectorScoreboard:
    """Scoreboard for the batched virtual machine.

    Message *population* is structural (shared by every run of a
    congruent sub-batch), so contention stays a scalar; only departure
    times are per-run vectors.  FIFO order is by ``msg_id``: a sender's
    messages to one destination are added in program order and their
    departure times are nondecreasing in every run, so insertion order
    *is* the per-run depart order -- no per-run sorting needed.
    """

    def __init__(self):
        self._entries: dict[int, VectorEntry] = {}
        self._next_id = 0
        self._inter_count = 0
        self.peak = 0
        self.total_added = 0

    def add(
        self, src: int, dst: int, size: int, depart, intra: bool = False,
        payload: object = None,
    ) -> VectorEntry:
        entry = VectorEntry(
            self._next_id, src, dst, size, depart, intra, payload
        )
        self._next_id += 1
        self._entries[entry.msg_id] = entry
        self.total_added += 1
        if not intra:
            self._inter_count += 1
        if len(self._entries) > self.peak:
            self.peak = len(self._entries)
        return entry

    def remove(self, msg_id: int) -> VectorEntry:
        try:
            entry = self._entries.pop(msg_id)
        except KeyError:
            raise KeyError(f"message {msg_id} not on the scoreboard") from None
        if not entry.intra:
            self._inter_count -= 1
        return entry

    def oldest_for(self, src: int, dst: int) -> VectorEntry | None:
        """Lowest-msg_id outstanding message from src to dst (see class
        docstring: insertion order is FIFO order in every run)."""
        best = None
        for e in self._entries.values():
            if e.src == src and e.dst == dst:
                if best is None or e.msg_id < best.msg_id:
                    best = e
        return best

    def heads_for_dst(self, dst: int) -> list[VectorEntry]:
        """Each source's oldest outstanding message to *dst* (the
        wildcard-receive candidates), in ascending msg_id order."""
        heads: dict[int, VectorEntry] = {}
        for e in sorted(
            (e for e in self._entries.values() if e.dst == dst),
            key=lambda e: e.msg_id,
        ):
            if e.src not in heads:
                heads[e.src] = e
        return sorted(heads.values(), key=lambda e: e.msg_id)

    def split(self, index) -> "VectorScoreboard":
        """A scoreboard for the sub-batch of runs selected by *index*.

        Shares message identities (msg_id counter state, population
        counters) with the parent but slices every departure vector, so
        divergent sub-batches evolve independently afterwards.
        """
        child = VectorScoreboard()
        child._entries = {
            mid: e.sliced(index) for mid, e in self._entries.items()
        }
        child._next_id = self._next_id
        child._inter_count = self._inter_count
        child.peak = self.peak
        child.total_added = self.total_added
        return child

    @property
    def contention(self) -> int:
        """Outstanding inter-node messages (shared by all runs of the
        sub-batch -- population is structural)."""
        return self._inter_count

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[VectorEntry]:
        return sorted(self._entries.values(), key=lambda e: e.msg_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VectorScoreboard outstanding={len(self)} peak={self.peak}>"
