"""Parallel Monte Carlo prediction engine with an on-disk result cache.

The paper's Section 6 cost claim ("PEVPM simulated the Jacobi program on
Perseus at about 67.5 times its actual execution speed") is a statement
about evaluation *throughput*.  Monte Carlo runs of the virtual machine
are embarrassingly parallel -- every run is an independent evaluation
with its own RNG stream -- so this module fans them out over a
:class:`concurrent.futures.ProcessPoolExecutor`, with three guarantees:

* **Reproducibility** -- per-run streams are derived from
  :class:`numpy.random.SeedSequence` children, so serial and parallel
  execution produce bit-identical ``Prediction.times`` for the same seed
  (the constraint MPI benchmarking work such as Hunold &
  Carpen-Amarie's *MPI Benchmarking Revisited* puts on any speed-up:
  faster must not mean different).
* **Graceful degradation** -- single-core hosts, one-run evaluations and
  unpicklable model callables (closures) all fall back to the serial
  path with identical results.
* **Amortised setup** -- the model/timing payload is shipped to each
  worker once (pool initializer), not once per run, and each worker
  compiles directive models once per run group.

:class:`PredictionCache` persists finished evaluations to JSON keyed by
a fingerprint of (model, params, timing source, seed, runs, machine
shape), following the ``benchmarks/out/cache`` pattern: a re-run of a
study reuses every prediction it has already paid for.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import signal
import tempfile
import time as _time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Generator

import numpy as np

from ..obs.profile import PhaseProfiler
from .compile import compiled_program_for
from .directives import Block
from .interpreter import compile_model
from .machine import MachineResult, ProcContext, VirtualMachine
from .vector import BatchedVirtualMachine

__all__ = [
    "RunGroup",
    "RunOutcome",
    "PredictionCache",
    "POOL_REBUILD_LIMIT",
    "POOL_WEDGE_TIMEOUT",
    "VECTOR_BATCH",
    "as_seed_sequence",
    "chunk_seed",
    "install_fault_injector",
    "run_seeds",
    "group_run_seeds",
    "resolve_workers",
    "evaluate_groups",
]

#: maximum Monte Carlo runs evaluated per batched-VM chunk.  Fixed (not a
#: function of the worker count) so batch-mode output is bit-identical
#: under any ``workers`` setting: chunk boundaries and chunk seed streams
#: depend only on (seed, runs, vector_batch).
VECTOR_BATCH = 64

#: how many times a broken process pool is rebuilt before the remaining
#: work units finish on the serial path instead
POOL_REBUILD_LIMIT = 2

#: watchdog interval for the dispatch loop: if *no* work unit completes
#: for this many seconds the pool is considered wedged (e.g. a child
#: that deadlocked on a lock it inherited across ``fork``), its workers
#: are killed and recovery proceeds as for a crashed worker.  Individual
#: work units are chunks that normally finish in well under a second, so
#: a pool silent for this long is stuck, not slow.
POOL_WEDGE_TIMEOUT = 120.0

#: chaos hook (see :mod:`repro.service.faults`): an object whose
#: ``on_pool_dispatch(pool)`` is called after each round of submissions
_FAULT_INJECTOR = None


def install_fault_injector(injector) -> None:
    """Install (or, with ``None``, remove) the process-pool fault hook."""
    global _FAULT_INJECTOR
    _FAULT_INJECTOR = injector


# -- seeding ----------------------------------------------------------------------
def as_seed_sequence(seed) -> np.random.SeedSequence:
    """Normalise an integer seed (or a SeedSequence) to a SeedSequence."""
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def run_seeds(root: np.random.SeedSequence, runs: int) -> list[np.random.SeedSequence]:
    """*runs* independent child streams of *root*, idempotently.

    Equivalent to ``root.spawn(runs)`` but without mutating the parent's
    spawn counter, so the same root yields the same children on every
    call -- repeated ``predict`` invocations with one seed stay
    deterministic, and the disk cache can key on the root alone.
    """
    return [
        np.random.SeedSequence(entropy=root.entropy, spawn_key=root.spawn_key + (i,))
        for i in range(runs)
    ]


def seed_token(root: np.random.SeedSequence) -> list:
    """A JSON-able identity for a seed stream (cache-key component)."""
    return [str(root.entropy), list(root.spawn_key)]


# -- run groups -----------------------------------------------------------------
@dataclass
class RunGroup:
    """One (model, machine size, timing source) evaluation of *runs* MC runs."""

    model: object  #: directive Block or program callable(ctx) -> generator
    nprocs: int
    timing: object  #: TimingModel
    seed: np.random.SeedSequence
    runs: int
    params: dict | None = None
    trace_last: bool = False
    nic_serialisation: str = "tx"
    ppn: int = 1
    #: evaluate runs through the batched (vectorised) virtual machine in
    #: chunks of *vector_batch*; tracing needs the per-run engine, so
    #: ``trace_last`` wins when both are set.
    vector_runs: bool = False
    vector_batch: int = VECTOR_BATCH
    #: collect per-phase host-time attribution (sweep/match/sample) for
    #: every run -- wall-clock measurement only; the seeded RNG streams
    #: are untouched, so profiled and unprofiled runs are bit-identical.
    profile: bool = False
    #: lower the model to a static per-rank schedule once
    #: (:func:`repro.pevpm.compile.compiled_program_for`) and execute the
    #: compiled form; bit-identical to interpreted evaluation, and a
    #: divergent (wildcard-racing) program transparently falls back to
    #: its generator.  Part of the cache key: a compiled evaluation is
    #: recorded as such.
    compiled: bool = True
    #: absolute index of this group's first run in its seed stream:
    #: scalar run *i* draws child stream ``run_offset + i`` and batch
    #: chunks are seeded at absolute starts, so a group covering runs
    #: ``[offset, offset+runs)`` is bit-identical to the same slice of a
    #: larger one-shot group (provided chunk boundaries line up) -- the
    #: property adaptive (precision-targeted) evaluation extends runs
    #: through.  0, the default, is the ordinary whole-evaluation group.
    run_offset: int = 0


def _vectorised(group: RunGroup) -> bool:
    return group.vector_runs and not group.trace_last


def _vector_chunks(group: RunGroup) -> list[tuple[int, int]]:
    """(start, size) chunks of the group's runs, fixed by (runs,
    vector_batch) alone -- the batch-mode work units."""
    batch = max(1, group.vector_batch)
    return [
        (start, min(batch, group.runs - start))
        for start in range(0, group.runs, batch)
    ]


def chunk_seed(root: np.random.SeedSequence, start: int) -> np.random.SeedSequence:
    """Batch-mode seed convention: the chunk covering runs ``[start,
    start+size)`` draws from the child stream scalar run *start* would
    use.  Chunks therefore stay independent of each other and of the
    worker count, and the convention needs no new state beyond the
    per-run streams of :func:`run_seeds`."""
    return np.random.SeedSequence(
        entropy=root.entropy, spawn_key=root.spawn_key + (start,)
    )


def group_run_seeds(group: "RunGroup") -> list[np.random.SeedSequence]:
    """Per-run child streams of one group at **absolute** run indices.

    Scalar run *i* of a group draws child ``run_offset + i`` -- the same
    stream run ``run_offset + i`` of a zero-offset group would draw, so
    evaluating runs in offset slices (the adaptive extension scheme)
    reproduces a one-shot evaluation bit for bit."""
    return [chunk_seed(group.seed, group.run_offset + i) for i in range(group.runs)]


@dataclass
class RunOutcome:
    """One Monte Carlo run's result plus its host cost."""

    elapsed: float  #: virtual completion time (the prediction)
    result: MachineResult = field(repr=False)
    wall: float = 0.0  #: host seconds this run took to evaluate
    #: per-phase host seconds (``{"sweep": ..., "match": ..., "sample":
    #: ...}``) when the group asked for profiling; ``None`` otherwise.
    #: Plain picklable dict so it rides back from pool workers.
    phases: dict | None = None


def _program_for(group: RunGroup):
    """The executable form of a group's model: a compiled static schedule
    when the group asks for one, else the generator factory."""
    if group.compiled:
        return compiled_program_for(group.model, group.nprocs, group.params)
    if isinstance(group.model, Block):
        return compile_model(group.model, group.params)
    if callable(group.model):
        return group.model
    raise TypeError(
        "model must be a directive Block or a program callable(ctx) -> generator"
    )


def _execute_run(
    group: RunGroup,
    program: Callable[[ProcContext], Generator],
    child: np.random.SeedSequence,
    trace: bool,
) -> RunOutcome:
    t0 = _time.perf_counter()
    profiler = PhaseProfiler() if group.profile else None
    vm = VirtualMachine(
        group.nprocs,
        group.timing,
        seed=child,
        params=group.params,
        trace=trace,
        nic_serialisation=group.nic_serialisation,
        ppn=group.ppn,
        profiler=profiler,
    )
    result = vm.run(program)
    return RunOutcome(
        elapsed=result.elapsed,
        result=result,
        wall=_time.perf_counter() - t0,
        phases=None if profiler is None else profiler.snapshot(),
    )


def _execute_batch(
    group: RunGroup,
    program: Callable[[ProcContext], Generator],
    start: int,
    size: int,
) -> list[RunOutcome]:
    """Evaluate runs ``[start, start+size)`` through the batched VM.

    Host wall time is shared by all runs of a chunk, so each outcome is
    attributed an equal share.
    """
    t0 = _time.perf_counter()
    profiler = PhaseProfiler() if group.profile else None
    vm = BatchedVirtualMachine(
        group.nprocs,
        group.timing,
        seed=chunk_seed(group.seed, group.run_offset + start),
        runs=size,
        params=group.params,
        nic_serialisation=group.nic_serialisation,
        ppn=group.ppn,
        profiler=profiler,
    )
    results = vm.run(program)
    share = (_time.perf_counter() - t0) / size
    # Phase time, like wall time, is a property of the whole chunk; each
    # run is attributed an equal share.
    phase_share = None if profiler is None else profiler.scaled(1.0 / size)
    return [
        RunOutcome(
            elapsed=res.elapsed,
            result=res,
            wall=share,
            phases=None if phase_share is None else dict(phase_share),
        )
        for res in results
    ]


# -- worker-side state ---------------------------------------------------------
# The pool initializer unpickles the group list once per worker; compiled
# programs are cached per group index so a worker evaluating several runs
# of one group compiles its directives once.
_WORKER_GROUPS: list[RunGroup] | None = None
_WORKER_PROGRAMS: dict[int, Callable] = {}


def _init_worker(payload: bytes) -> None:
    global _WORKER_GROUPS
    # Forked workers inherit the parent's signal dispositions and -- when
    # the parent runs an asyncio loop with signal handlers -- its signal
    # wakeup fd.  Without a reset, a SIGTERM aimed at a *worker* (e.g.
    # ProcessPoolExecutor terminating the siblings of a crashed worker)
    # is written into the parent's shared wakeup pipe and read there as
    # "the server got SIGTERM", triggering a spurious drain.  Restore the
    # defaults so worker signals stay the worker's own.
    try:
        signal.set_wakeup_fd(-1)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_DFL)
    except (ValueError, OSError):
        pass  # non-main thread or restricted host: nothing to undo
    _WORKER_GROUPS = pickle.loads(payload)
    _WORKER_PROGRAMS.clear()


def _run_task(group_idx: int, run_idx: int, child, trace: bool):
    group = _WORKER_GROUPS[group_idx]
    program = _WORKER_PROGRAMS.get(group_idx)
    if program is None:
        program = _WORKER_PROGRAMS[group_idx] = _program_for(group)
    outcome = _execute_run(group, program, child, trace)
    return group_idx, run_idx, outcome


def _run_batch_task(group_idx: int, start: int, size: int):
    group = _WORKER_GROUPS[group_idx]
    program = _WORKER_PROGRAMS.get(group_idx)
    if program is None:
        program = _WORKER_PROGRAMS[group_idx] = _program_for(group)
    outcomes = _execute_batch(group, program, start, size)
    return group_idx, start, outcomes


# -- the engine ---------------------------------------------------------------
def resolve_workers(workers: int | None, tasks: int) -> int:
    """Number of pool processes to use for *tasks* independent runs.

    ``None`` means one per host core, never more than there are tasks;
    explicit values are clamped the same way.  A result of 1 selects the
    serial path.
    """
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError("workers must be >= 1 (or None for one per core)")
    return max(1, min(workers, tasks))


def _evaluate_serial(groups: list[RunGroup]) -> list[list[RunOutcome]]:
    out: list[list[RunOutcome]] = []
    for group in groups:
        program = _program_for(group)
        outcomes = []
        if _vectorised(group):
            for start, size in _vector_chunks(group):
                outcomes.extend(_execute_batch(group, program, start, size))
        else:
            children = group_run_seeds(group)
            for run, child in enumerate(children):
                trace = group.trace_last and run == group.runs - 1
                outcomes.append(_execute_run(group, program, child, trace))
        out.append(outcomes)
    return out


def _work_units(groups: list[RunGroup]) -> list[tuple]:
    """Every dispatchable work unit, as a re-submittable descriptor.

    ``("batch", gi, start, size)`` for batched-VM chunks and ``("run",
    gi, run, child, trace)`` for scalar MC runs.  Descriptors carry
    everything needed to (re-)dispatch, so recovery after a pool crash
    re-runs exactly the lost units -- each with the same seed stream it
    would have used the first time.
    """
    units: list[tuple] = []
    for gi, group in enumerate(groups):
        if _vectorised(group):
            for start, size in _vector_chunks(group):
                units.append(("batch", gi, start, size))
            continue
        children = group_run_seeds(group)
        for run, child in enumerate(children):
            trace = group.trace_last and run == group.runs - 1
            units.append(("run", gi, run, child, trace))
    return units


def _submit_unit(pool: ProcessPoolExecutor, unit: tuple):
    if unit[0] == "batch":
        _, gi, start, size = unit
        return pool.submit(_run_batch_task, gi, start, size)
    _, gi, run, child, trace = unit
    return pool.submit(_run_task, gi, run, child, trace)


def _store_result(results, payload_out) -> None:
    if len(payload_out) == 3 and isinstance(payload_out[2], list):
        gi, start, outcomes = payload_out
        results[gi][start:start + len(outcomes)] = outcomes
    else:
        gi, run, outcome = payload_out
        results[gi][run] = outcome


def _unit_done(results, unit: tuple) -> bool:
    """Whether *unit*'s slot(s) in the result grid are already filled --
    the completion record recovery consults after a pool crash.  A batch
    unit fills its whole slice atomically, so its first slot suffices."""
    return results[unit[1]][unit[2]] is not None


def _evaluate_units_serial(groups, results, units: list[tuple]) -> None:
    """Finish *units* on the serial path (the terminal fallback when the
    pool keeps breaking); numbers are identical by construction."""
    programs: dict[int, Callable] = {}
    for unit in units:
        gi = unit[1]
        program = programs.get(gi)
        if program is None:
            program = programs[gi] = _program_for(groups[gi])
        if unit[0] == "batch":
            _, _, start, size = unit
            outcomes = _execute_batch(groups[gi], program, start, size)
            results[gi][start:start + len(outcomes)] = outcomes
        else:
            _, _, run, child, trace = unit
            results[gi][run] = _execute_run(groups[gi], program, child, trace)


def evaluate_groups(
    groups: list[RunGroup],
    workers: int | None = None,
    on_rebuild: Callable[[int], None] | None = None,
) -> list[list[RunOutcome]]:
    """Evaluate every Monte Carlo run of every group, possibly in parallel.

    Returns one ``RunOutcome`` list per group, run-ordered.  For per-run
    groups the work unit is a single MC run; for ``vector_runs`` groups
    it is a fixed-size chunk of runs evaluated by the batched VM.
    Parallelism applies across work units *and* across groups (the
    ``proc_counts`` / timing-mode axes of the higher-level helpers).
    Results are bit-identical for any ``workers`` setting: scalar run
    ``i`` always uses child stream ``i`` of the group's seed, and batch
    chunks are seeded by :func:`chunk_seed` at worker-independent
    boundaries.

    **Crash recovery**: a worker process dying mid-evaluation (OOM kill,
    SIGKILL, a crashed interpreter) surfaces as ``BrokenProcessPool``.
    The executor is rebuilt and only the *unfinished* work units are
    re-dispatched -- their seed streams depend on (seed, run index)
    alone, so the recovered evaluation is bit-identical to an undisturbed
    one.  A pool that stops making progress entirely -- no unit finishes
    for :data:`POOL_WEDGE_TIMEOUT` seconds, e.g. a child deadlocked on a
    lock it inherited across ``fork`` -- is killed and recovered the
    same way.  After :data:`POOL_REBUILD_LIMIT` rebuilds the remaining
    units finish serially instead, so the evaluation always terminates.
    *on_rebuild*, when given, is called with the rebuild ordinal each
    time the pool is reconstructed (metrics hook for the serving layer).
    """
    total = sum(
        len(_vector_chunks(g)) if _vectorised(g) else g.runs for g in groups
    )
    if sum(g.runs for g in groups) == 0:
        return [[] for _ in groups]
    nworkers = resolve_workers(workers, total)
    for group in groups:
        _program_for(group)  # validate model types before forking
    if nworkers <= 1:
        return _evaluate_serial(groups)
    try:
        payload = pickle.dumps(groups, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        # Unpicklable model/timing (e.g. a closure program): the pool
        # cannot ship it, but the serial path produces the same numbers.
        return _evaluate_serial(groups)

    results: list[list[RunOutcome | None]] = [[None] * g.runs for g in groups]
    remaining = _work_units(groups)
    rebuilds = 0
    while remaining:
        pool = None
        try:
            pool = ProcessPoolExecutor(
                max_workers=min(nworkers, len(remaining)),
                initializer=_init_worker,
                initargs=(payload,),
            )
            pending = {_submit_unit(pool, unit): unit for unit in remaining}
            injector = _FAULT_INJECTOR
            if injector is not None:
                injector.on_pool_dispatch(pool)
            while pending:
                done, _ = wait(
                    pending,
                    timeout=POOL_WEDGE_TIMEOUT,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    # Nothing finished for a whole watchdog interval:
                    # the pool is wedged, not slow (a forked child can
                    # deadlock on a lock another thread held at fork
                    # time, and such a child never crashes -- it just
                    # sits there).  Kill the workers outright so the
                    # shutdown below cannot block, then recover exactly
                    # as for a crashed worker.
                    _kill_pool_processes(pool)
                    raise BrokenProcessPool(
                        f"no work unit completed within "
                        f"{POOL_WEDGE_TIMEOUT:g}s; pool presumed wedged"
                    )
                for fut in done:
                    unit = pending.pop(fut)
                    _store_result(results, fut.result())
            remaining = []
        except BrokenProcessPool:
            # A worker died: everything already stored stays; rebuild
            # and re-dispatch only the units without a result.
            remaining = [u for u in remaining if not _unit_done(results, u)]
            rebuilds += 1
            if on_rebuild is not None:
                on_rebuild(rebuilds)
            if rebuilds > POOL_REBUILD_LIMIT:
                _evaluate_units_serial(groups, results, remaining)
                remaining = []
        except (OSError, RuntimeError):
            # Pool creation can fail on restricted hosts (no /dev/shm,
            # fork limits); the evaluation is still well-defined serially.
            remaining = [u for u in remaining if not _unit_done(results, u)]
            _evaluate_units_serial(groups, results, remaining)
            remaining = []
        finally:
            if pool is not None:
                # On the wedge path every worker is already dead, so the
                # join inside shutdown cannot block.
                pool.shutdown(wait=True, cancel_futures=True)
    return results  # type: ignore[return-value]


def _kill_pool_processes(pool: ProcessPoolExecutor) -> None:
    """SIGKILL every worker of *pool* (wedged-pool recovery)."""
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            os.kill(proc.pid, signal.SIGKILL)
        except (OSError, ProcessLookupError):
            pass


# -- the on-disk prediction cache -----------------------------------------------
class PredictionCache:
    """Keyed JSON store of finished Monte Carlo evaluations.

    Follows the ``benchmarks/out/cache`` pattern: content-addressed files
    under one directory, safe to delete wholesale to force fresh
    evaluation.  Values hold the per-run predicted times and per-run host
    wall times -- everything :class:`~repro.pevpm.predict.Prediction`
    needs except the (unserialisable, rarely wanted) ``MachineResult``
    objects.
    """

    VERSION = 3

    def __init__(self, root: str | Path):
        self.root = Path(root)
        #: corrupt entries quarantined by :meth:`get` since construction
        self.corruptions = 0
        #: optional callback(path) fired when an entry is quarantined
        self.on_corrupt: Callable[[Path], None] | None = None

    def key(
        self,
        model,
        params: dict | None,
        nprocs: int,
        timing_fingerprint: str,
        seed: np.random.SeedSequence,
        runs: int,
        nic_serialisation: str,
        ppn: int,
        vector_runs: bool = False,
        vector_batch: int = VECTOR_BATCH,
        compiled: bool = True,
        precision: dict | None = None,
        run_offset: int = 0,
    ) -> str:
        """Content fingerprint of one ``predict`` call.

        Batch-mode evaluations use their own seed-stream convention, so
        the vector flag (and, when set, the chunk size) is part of the
        key -- scalar and batched results for the same seed are distinct
        cache entries.  The compiled-schedule flag is keyed too: compiled
        and interpreted evaluations are bit-identical by contract, but a
        distinct key keeps any violation of that contract observable
        instead of silently papered over by the cache.

        *precision* (the JSON-able form of a
        :class:`~repro.stats.PrecisionTarget`) keys an **adaptive**
        evaluation: the run count is decided by the stopping rule, so
        the target replaces ``runs`` in the fingerprint (``runs`` is
        nulled).  Fixed-``runs`` keys are byte-identical to the
        pre-adaptive scheme -- existing caches stay warm.
        """
        try:
            model_blob = pickle.dumps((model, params), protocol=4)
        except Exception:
            model_blob = repr((model, params)).encode()
        ident = {
            "v": self.VERSION,
            "nprocs": nprocs,
            "timing": timing_fingerprint,
            "seed": seed_token(seed),
            "runs": runs,
            "nic": nic_serialisation,
            "ppn": ppn,
            "vector": bool(vector_runs),
            "vbatch": vector_batch if vector_runs else None,
            "compiled": bool(compiled),
        }
        if precision is not None:
            ident["runs"] = None
            ident["precision"] = dict(sorted(precision.items()))
        if run_offset:
            # Offset slices (adaptive increments) are distinct content;
            # zero offsets omit the field so pre-offset keys are stable.
            ident["offset"] = run_offset
        h = hashlib.sha256()
        h.update(model_blob)
        h.update(json.dumps(ident, sort_keys=True).encode())
        return h.hexdigest()

    def group_key(self, group: RunGroup) -> str:
        """The cache key of one :class:`RunGroup` -- the shared entry
        point for :func:`~repro.pevpm.predict.predict` and the
        prediction service's cache tiers."""
        return self.key(
            group.model,
            group.params,
            group.nprocs,
            group.timing.fingerprint(),
            group.seed,
            group.runs,
            group.nic_serialisation,
            group.ppn,
            vector_runs=group.vector_runs,
            vector_batch=group.vector_batch,
            compiled=group.compiled,
            run_offset=group.run_offset,
        )

    def _path(self, key: str) -> Path:
        return self.root / f"predict-{key}.json"

    def get(self, key: str) -> dict | None:
        """Load one entry; a corrupt/truncated entry is a miss **and** is
        quarantined (renamed to ``*.corrupt``) so later lookups do not
        keep re-reading and re-failing on the poisoned file."""
        path = self._path(key)
        if not path.exists():
            return None
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            doc = json.loads(text)
            if not isinstance(doc, dict):
                raise ValueError("cache entry is not a JSON object")
        except ValueError:
            self._quarantine(path)
            return None
        if doc.get("version") != self.VERSION:
            return None
        return doc

    def _quarantine(self, path: Path) -> None:
        """Move a poisoned entry out of the lookup path (unlink if even
        the rename fails) and notify the owner's corruption counter."""
        self.corruptions += 1
        try:
            path.replace(path.with_suffix(".corrupt"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        if self.on_corrupt is not None:
            self.on_corrupt(path)

    def put(self, key: str, doc: dict) -> None:
        """Persist *doc* crash- and concurrency-safely.

        The entry is serialised to a uniquely-named temporary file in the
        cache directory and atomically renamed into place: a writer
        killed mid-write leaves only a stray ``.tmp`` file (never a
        truncated entry that would poison later reads), and concurrent
        writers of the same key cannot interleave -- the last complete
        rename wins with a whole document either way.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        doc = dict(doc, version=self.VERSION)
        path = self._path(key)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f"predict-{key[:16]}-", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(json.dumps(doc))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
