"""Parallel Monte Carlo prediction engine with an on-disk result cache.

The paper's Section 6 cost claim ("PEVPM simulated the Jacobi program on
Perseus at about 67.5 times its actual execution speed") is a statement
about evaluation *throughput*.  Monte Carlo runs of the virtual machine
are embarrassingly parallel -- every run is an independent evaluation
with its own RNG stream -- so this module fans them out over a
:class:`concurrent.futures.ProcessPoolExecutor`, with three guarantees:

* **Reproducibility** -- per-run streams are derived from
  :class:`numpy.random.SeedSequence` children, so serial and parallel
  execution produce bit-identical ``Prediction.times`` for the same seed
  (the constraint MPI benchmarking work such as Hunold &
  Carpen-Amarie's *MPI Benchmarking Revisited* puts on any speed-up:
  faster must not mean different).
* **Graceful degradation** -- single-core hosts, one-run evaluations and
  unpicklable model callables (closures) all fall back to the serial
  path with identical results.
* **Amortised setup** -- the model/timing payload is shipped to each
  worker once (pool initializer), not once per run, and each worker
  compiles directive models once per run group.

:class:`PredictionCache` persists finished evaluations to JSON keyed by
a fingerprint of (model, params, timing source, seed, runs, machine
shape), following the ``benchmarks/out/cache`` pattern: a re-run of a
study reuses every prediction it has already paid for.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time as _time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Generator

import numpy as np

from .directives import Block
from .interpreter import compile_model
from .machine import MachineResult, ProcContext, VirtualMachine
from .vector import BatchedVirtualMachine

__all__ = [
    "RunGroup",
    "RunOutcome",
    "PredictionCache",
    "VECTOR_BATCH",
    "as_seed_sequence",
    "chunk_seed",
    "run_seeds",
    "resolve_workers",
    "evaluate_groups",
]

#: maximum Monte Carlo runs evaluated per batched-VM chunk.  Fixed (not a
#: function of the worker count) so batch-mode output is bit-identical
#: under any ``workers`` setting: chunk boundaries and chunk seed streams
#: depend only on (seed, runs, vector_batch).
VECTOR_BATCH = 64


# -- seeding ----------------------------------------------------------------------
def as_seed_sequence(seed) -> np.random.SeedSequence:
    """Normalise an integer seed (or a SeedSequence) to a SeedSequence."""
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def run_seeds(root: np.random.SeedSequence, runs: int) -> list[np.random.SeedSequence]:
    """*runs* independent child streams of *root*, idempotently.

    Equivalent to ``root.spawn(runs)`` but without mutating the parent's
    spawn counter, so the same root yields the same children on every
    call -- repeated ``predict`` invocations with one seed stay
    deterministic, and the disk cache can key on the root alone.
    """
    return [
        np.random.SeedSequence(entropy=root.entropy, spawn_key=root.spawn_key + (i,))
        for i in range(runs)
    ]


def seed_token(root: np.random.SeedSequence) -> list:
    """A JSON-able identity for a seed stream (cache-key component)."""
    return [str(root.entropy), list(root.spawn_key)]


# -- run groups -----------------------------------------------------------------
@dataclass
class RunGroup:
    """One (model, machine size, timing source) evaluation of *runs* MC runs."""

    model: object  #: directive Block or program callable(ctx) -> generator
    nprocs: int
    timing: object  #: TimingModel
    seed: np.random.SeedSequence
    runs: int
    params: dict | None = None
    trace_last: bool = False
    nic_serialisation: str = "tx"
    ppn: int = 1
    #: evaluate runs through the batched (vectorised) virtual machine in
    #: chunks of *vector_batch*; tracing needs the per-run engine, so
    #: ``trace_last`` wins when both are set.
    vector_runs: bool = False
    vector_batch: int = VECTOR_BATCH


def _vectorised(group: RunGroup) -> bool:
    return group.vector_runs and not group.trace_last


def _vector_chunks(group: RunGroup) -> list[tuple[int, int]]:
    """(start, size) chunks of the group's runs, fixed by (runs,
    vector_batch) alone -- the batch-mode work units."""
    batch = max(1, group.vector_batch)
    return [
        (start, min(batch, group.runs - start))
        for start in range(0, group.runs, batch)
    ]


def chunk_seed(root: np.random.SeedSequence, start: int) -> np.random.SeedSequence:
    """Batch-mode seed convention: the chunk covering runs ``[start,
    start+size)`` draws from the child stream scalar run *start* would
    use.  Chunks therefore stay independent of each other and of the
    worker count, and the convention needs no new state beyond the
    per-run streams of :func:`run_seeds`."""
    return np.random.SeedSequence(
        entropy=root.entropy, spawn_key=root.spawn_key + (start,)
    )


@dataclass
class RunOutcome:
    """One Monte Carlo run's result plus its host cost."""

    elapsed: float  #: virtual completion time (the prediction)
    result: MachineResult = field(repr=False)
    wall: float = 0.0  #: host seconds this run took to evaluate


def _program_for(group: RunGroup) -> Callable[[ProcContext], Generator]:
    if isinstance(group.model, Block):
        return compile_model(group.model, group.params)
    if callable(group.model):
        return group.model
    raise TypeError(
        "model must be a directive Block or a program callable(ctx) -> generator"
    )


def _execute_run(
    group: RunGroup,
    program: Callable[[ProcContext], Generator],
    child: np.random.SeedSequence,
    trace: bool,
) -> RunOutcome:
    t0 = _time.perf_counter()
    vm = VirtualMachine(
        group.nprocs,
        group.timing,
        seed=child,
        params=group.params,
        trace=trace,
        nic_serialisation=group.nic_serialisation,
        ppn=group.ppn,
    )
    result = vm.run(program)
    return RunOutcome(
        elapsed=result.elapsed, result=result, wall=_time.perf_counter() - t0
    )


def _execute_batch(
    group: RunGroup,
    program: Callable[[ProcContext], Generator],
    start: int,
    size: int,
) -> list[RunOutcome]:
    """Evaluate runs ``[start, start+size)`` through the batched VM.

    Host wall time is shared by all runs of a chunk, so each outcome is
    attributed an equal share.
    """
    t0 = _time.perf_counter()
    vm = BatchedVirtualMachine(
        group.nprocs,
        group.timing,
        seed=chunk_seed(group.seed, start),
        runs=size,
        params=group.params,
        nic_serialisation=group.nic_serialisation,
        ppn=group.ppn,
    )
    results = vm.run(program)
    share = (_time.perf_counter() - t0) / size
    return [
        RunOutcome(elapsed=res.elapsed, result=res, wall=share)
        for res in results
    ]


# -- worker-side state ---------------------------------------------------------
# The pool initializer unpickles the group list once per worker; compiled
# programs are cached per group index so a worker evaluating several runs
# of one group compiles its directives once.
_WORKER_GROUPS: list[RunGroup] | None = None
_WORKER_PROGRAMS: dict[int, Callable] = {}


def _init_worker(payload: bytes) -> None:
    global _WORKER_GROUPS
    _WORKER_GROUPS = pickle.loads(payload)
    _WORKER_PROGRAMS.clear()


def _run_task(group_idx: int, run_idx: int, child, trace: bool):
    group = _WORKER_GROUPS[group_idx]
    program = _WORKER_PROGRAMS.get(group_idx)
    if program is None:
        program = _WORKER_PROGRAMS[group_idx] = _program_for(group)
    outcome = _execute_run(group, program, child, trace)
    return group_idx, run_idx, outcome


def _run_batch_task(group_idx: int, start: int, size: int):
    group = _WORKER_GROUPS[group_idx]
    program = _WORKER_PROGRAMS.get(group_idx)
    if program is None:
        program = _WORKER_PROGRAMS[group_idx] = _program_for(group)
    outcomes = _execute_batch(group, program, start, size)
    return group_idx, start, outcomes


# -- the engine ---------------------------------------------------------------
def resolve_workers(workers: int | None, tasks: int) -> int:
    """Number of pool processes to use for *tasks* independent runs.

    ``None`` means one per host core, never more than there are tasks;
    explicit values are clamped the same way.  A result of 1 selects the
    serial path.
    """
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError("workers must be >= 1 (or None for one per core)")
    return max(1, min(workers, tasks))


def _evaluate_serial(groups: list[RunGroup]) -> list[list[RunOutcome]]:
    out: list[list[RunOutcome]] = []
    for group in groups:
        program = _program_for(group)
        outcomes = []
        if _vectorised(group):
            for start, size in _vector_chunks(group):
                outcomes.extend(_execute_batch(group, program, start, size))
        else:
            children = run_seeds(group.seed, group.runs)
            for run, child in enumerate(children):
                trace = group.trace_last and run == group.runs - 1
                outcomes.append(_execute_run(group, program, child, trace))
        out.append(outcomes)
    return out


def evaluate_groups(
    groups: list[RunGroup], workers: int | None = None
) -> list[list[RunOutcome]]:
    """Evaluate every Monte Carlo run of every group, possibly in parallel.

    Returns one ``RunOutcome`` list per group, run-ordered.  For per-run
    groups the work unit is a single MC run; for ``vector_runs`` groups
    it is a fixed-size chunk of runs evaluated by the batched VM.
    Parallelism applies across work units *and* across groups (the
    ``proc_counts`` / timing-mode axes of the higher-level helpers).
    Results are bit-identical for any ``workers`` setting: scalar run
    ``i`` always uses child stream ``i`` of the group's seed, and batch
    chunks are seeded by :func:`chunk_seed` at worker-independent
    boundaries.
    """
    total = sum(
        len(_vector_chunks(g)) if _vectorised(g) else g.runs for g in groups
    )
    if sum(g.runs for g in groups) == 0:
        return [[] for _ in groups]
    nworkers = resolve_workers(workers, total)
    for group in groups:
        _program_for(group)  # validate model types before forking
    if nworkers <= 1:
        return _evaluate_serial(groups)
    try:
        payload = pickle.dumps(groups, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        # Unpicklable model/timing (e.g. a closure program): the pool
        # cannot ship it, but the serial path produces the same numbers.
        return _evaluate_serial(groups)

    results: list[list[RunOutcome | None]] = [[None] * g.runs for g in groups]
    try:
        with ProcessPoolExecutor(
            max_workers=nworkers, initializer=_init_worker, initargs=(payload,)
        ) as pool:
            pending = set()
            for gi, group in enumerate(groups):
                if _vectorised(group):
                    for start, size in _vector_chunks(group):
                        pending.add(
                            pool.submit(_run_batch_task, gi, start, size)
                        )
                    continue
                children = run_seeds(group.seed, group.runs)
                for run, child in enumerate(children):
                    trace = group.trace_last and run == group.runs - 1
                    pending.add(pool.submit(_run_task, gi, run, child, trace))
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for fut in done:
                    payload_out = fut.result()
                    if len(payload_out) == 3 and isinstance(
                        payload_out[2], list
                    ):
                        gi, start, outcomes = payload_out
                        results[gi][start:start + len(outcomes)] = outcomes
                    else:
                        gi, run, outcome = payload_out
                        results[gi][run] = outcome
    except (OSError, RuntimeError):
        # Pool creation can fail on restricted hosts (no /dev/shm, fork
        # limits); the evaluation itself is still well-defined serially.
        return _evaluate_serial(groups)
    return results  # type: ignore[return-value]


# -- the on-disk prediction cache -----------------------------------------------
class PredictionCache:
    """Keyed JSON store of finished Monte Carlo evaluations.

    Follows the ``benchmarks/out/cache`` pattern: content-addressed files
    under one directory, safe to delete wholesale to force fresh
    evaluation.  Values hold the per-run predicted times and per-run host
    wall times -- everything :class:`~repro.pevpm.predict.Prediction`
    needs except the (unserialisable, rarely wanted) ``MachineResult``
    objects.
    """

    VERSION = 2

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def key(
        self,
        model,
        params: dict | None,
        nprocs: int,
        timing_fingerprint: str,
        seed: np.random.SeedSequence,
        runs: int,
        nic_serialisation: str,
        ppn: int,
        vector_runs: bool = False,
        vector_batch: int = VECTOR_BATCH,
    ) -> str:
        """Content fingerprint of one ``predict`` call.

        Batch-mode evaluations use their own seed-stream convention, so
        the vector flag (and, when set, the chunk size) is part of the
        key -- scalar and batched results for the same seed are distinct
        cache entries.
        """
        try:
            model_blob = pickle.dumps((model, params), protocol=4)
        except Exception:
            model_blob = repr((model, params)).encode()
        h = hashlib.sha256()
        h.update(model_blob)
        h.update(
            json.dumps(
                {
                    "v": self.VERSION,
                    "nprocs": nprocs,
                    "timing": timing_fingerprint,
                    "seed": seed_token(seed),
                    "runs": runs,
                    "nic": nic_serialisation,
                    "ppn": ppn,
                    "vector": bool(vector_runs),
                    "vbatch": vector_batch if vector_runs else None,
                },
                sort_keys=True,
            ).encode()
        )
        return h.hexdigest()

    def group_key(self, group: RunGroup) -> str:
        """The cache key of one :class:`RunGroup` -- the shared entry
        point for :func:`~repro.pevpm.predict.predict` and the
        prediction service's cache tiers."""
        return self.key(
            group.model,
            group.params,
            group.nprocs,
            group.timing.fingerprint(),
            group.seed,
            group.runs,
            group.nic_serialisation,
            group.ppn,
            vector_runs=group.vector_runs,
            vector_batch=group.vector_batch,
        )

    def _path(self, key: str) -> Path:
        return self.root / f"predict-{key}.json"

    def get(self, key: str) -> dict | None:
        path = self._path(key)
        if not path.exists():
            return None
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if doc.get("version") != self.VERSION:
            return None
        return doc

    def put(self, key: str, doc: dict) -> None:
        """Persist *doc* crash- and concurrency-safely.

        The entry is serialised to a uniquely-named temporary file in the
        cache directory and atomically renamed into place: a writer
        killed mid-write leaves only a stray ``.tmp`` file (never a
        truncated entry that would poison later reads), and concurrent
        writers of the same key cannot interleave -- the last complete
        rename wins with a whole document either way.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        doc = dict(doc, version=self.VERSION)
        path = self._path(key)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f"predict-{key[:16]}-", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(json.dumps(doc))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
