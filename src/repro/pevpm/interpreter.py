"""Interpretation of PEVPM directive IR as model programs.

This is the automated version of the paper's hand step: "The PEVPM
directives listed in Figure 5 were translated into a C language driver
program ... note, however, that this process could be automated by using
appropriate compiler techniques."  :func:`compile_model` turns a directive
tree into the program-factory callable the
:class:`~repro.pevpm.machine.VirtualMachine` executes, with every
directive's symbolic expressions evaluated per process against
``procnum`` / ``numprocs`` / ``iteration`` and user parameters.
"""

from __future__ import annotations

from typing import Callable, Generator

from .directives import Block, Directive, Loop, Message, ModelError, Runon, Serial
from .expr import evaluate
from .machine import ProcContext

__all__ = ["compile_model", "model_messages"]


def _require_int(value, what: str, line: int) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ModelError(f"line {line}: {what} must be numeric, got {value!r}")
    as_int = int(round(value))
    return as_int


def _execute(node: Directive, ctx: ProcContext, names: dict) -> Generator:
    """Yield machine operations for *node* as executed by process
    ``names['procnum']``."""
    if isinstance(node, Block):
        for child in node.children:
            yield from _execute(child, ctx, names)
    elif isinstance(node, Serial):
        seconds = evaluate(node._time_ast, names)
        if seconds < 0:
            raise ModelError(f"line {node.line}: negative Serial time {seconds}")
        yield ctx.serial(float(seconds), label=f"serial@{node.line}")
    elif isinstance(node, Loop):
        n = _require_int(evaluate(node._iter_ast, names), "Loop iterations", node.line)
        if n < 0:
            raise ModelError(f"line {node.line}: negative iteration count {n}")
        outer = names.get("iteration")
        for i in range(n):
            names["iteration"] = i
            yield from _execute(node.body, ctx, names)
        if outer is None:
            names.pop("iteration", None)
        else:
            names["iteration"] = outer
    elif isinstance(node, Runon):
        for cond_ast, block in zip(node._cond_asts, node.blocks):
            if evaluate(cond_ast, names):
                yield from _execute(block, ctx, names)
                break
    elif isinstance(node, Message):
        src = _require_int(evaluate(node._src_ast, names), "Message from", node.line)
        dst = _require_int(evaluate(node._dst_ast, names), "Message to", node.line)
        size = _require_int(evaluate(node._size_ast, names), "Message size", node.line)
        me = ctx.procnum
        if node.kind.is_send:
            if src != me:
                raise ModelError(
                    f"line {node.line}: send directive reached by process "
                    f"{me} but from = {src}; guard it with Runon"
                )
            yield ctx.send(dst, size, label=f"{node.kind.value}@{node.line}")
        else:
            if dst != me:
                raise ModelError(
                    f"line {node.line}: recv directive reached by process "
                    f"{me} but to = {dst}; guard it with Runon"
                )
            yield ctx.recv(src, label=f"{node.kind.value}@{node.line}")
    else:
        raise ModelError(f"unknown directive node {type(node).__name__}")


def compile_model(
    model: Block, params: dict | None = None
) -> Callable[[ProcContext], Generator]:
    """Compile a directive tree into a VirtualMachine program factory.

    *params* supplies values for free variables in directive expressions
    (the paper's Jacobi model needs ``xsize``; ``sizeof(...)`` is built
    in).  ``procnum``, ``numprocs`` and the innermost ``iteration`` are
    bound automatically.
    """
    params = dict(params or {})

    def program(ctx: ProcContext) -> Generator:
        names = dict(params)
        names["procnum"] = ctx.procnum
        names["numprocs"] = ctx.numprocs
        return _execute(model, ctx, names)

    return program


def model_messages(model: Block, nprocs: int, params: dict | None = None) -> int:
    """Statically count the messages the model will send in total --
    useful for sanity checks and cost estimates before a long run."""
    program = compile_model(model, params)
    count = 0
    for p in range(nprocs):
        ctx = ProcContext(p, nprocs, params)
        for op in program(ctx):
            if op[0] == "send":
                count += 1
    return count
