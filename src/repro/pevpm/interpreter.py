"""Interpretation of PEVPM directive IR as model programs.

This is the automated version of the paper's hand step: "The PEVPM
directives listed in Figure 5 were translated into a C language driver
program ... note, however, that this process could be automated by using
appropriate compiler techniques."  :func:`compile_model` turns a directive
tree into the program-factory callable the
:class:`~repro.pevpm.machine.VirtualMachine` executes, with every
directive's symbolic expressions evaluated per process against
``procnum`` / ``numprocs`` / ``iteration`` and user parameters.
"""

from __future__ import annotations

from typing import Callable, Generator

from .directives import (
    Block,
    Collective,
    Directive,
    Loop,
    Message,
    ModelError,
    Runon,
    Serial,
)
from .expr import evaluate
from .machine import ProcContext

__all__ = ["compile_model", "lower_collective", "model_messages"]


def lower_collective(
    op: str, rank: int, nprocs: int, size: int, root: int = 0
) -> list[tuple]:
    """Rank *rank*'s point-to-point schedule for one collective.

    Returns ``("send", peer, size)`` / ``("recv", peer)`` records in
    execution order, mirroring :mod:`repro.smpi.collectives` operation
    for operation: binomial tree for ``bcast``/``reduce`` (the same
    lowest-set-bit parent and mask walk), ``allreduce`` as reduce-to-0
    followed by bcast-from-0, and ``allgather`` as the P-1-step ring
    (each step sends right and receives from the left -- the machine's
    sends are non-blocking, so the straight-line order cannot deadlock).
    Exposed so tests can compare the lowered schedules against the
    ``smpi`` generators directly.
    """
    if nprocs < 1:
        raise ModelError("nprocs must be >= 1")
    if not 0 <= rank < nprocs:
        raise ModelError(f"rank {rank} outside 0..{nprocs - 1}")
    if size < 0:
        raise ModelError("collective size must be non-negative")
    if op in ("bcast", "reduce") and not 0 <= root < nprocs:
        raise ModelError(f"collective root {root} outside 0..{nprocs - 1}")
    P = nprocs
    out: list[tuple] = []
    if P == 1:
        return out
    if op == "bcast":
        relative = (rank - root) % P
        if relative != 0:
            lsb = relative & (-relative)
            out.append(("recv", (rank - lsb) % P))
            mask = lsb >> 1
        else:
            mask = 1
            while mask < P:
                mask <<= 1
            mask >>= 1
        while mask >= 1:
            if relative + mask < P:
                out.append(("send", (rank + mask) % P, size))
            mask >>= 1
        return out
    if op == "reduce":
        relative = (rank - root) % P
        mask = 1
        while mask < P:
            if relative & mask:
                out.append(("send", (rank - mask) % P, size))
                return out
            if relative + mask < P:
                out.append(("recv", (rank + mask) % P))
            mask <<= 1
        return out
    if op == "allreduce":
        out.extend(lower_collective("reduce", rank, nprocs, size, root=0))
        out.extend(lower_collective("bcast", rank, nprocs, size, root=0))
        return out
    if op == "allgather":
        right = (rank + 1) % P
        left = (rank - 1) % P
        for _ in range(P - 1):
            out.append(("send", right, size))
            out.append(("recv", left))
        return out
    raise ModelError(f"unknown collective op {op!r}")


def _require_int(value, what: str, line: int) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ModelError(f"line {line}: {what} must be numeric, got {value!r}")
    as_int = int(round(value))
    return as_int


def _execute(node: Directive, ctx: ProcContext, names: dict) -> Generator:
    """Yield machine operations for *node* as executed by process
    ``names['procnum']``."""
    if isinstance(node, Block):
        for child in node.children:
            yield from _execute(child, ctx, names)
    elif isinstance(node, Serial):
        seconds = evaluate(node._time_ast, names)
        if seconds < 0:
            raise ModelError(f"line {node.line}: negative Serial time {seconds}")
        yield ctx.serial(float(seconds), label=f"serial@{node.line}")
    elif isinstance(node, Loop):
        n = _require_int(evaluate(node._iter_ast, names), "Loop iterations", node.line)
        if n < 0:
            raise ModelError(f"line {node.line}: negative iteration count {n}")
        outer = names.get("iteration")
        for i in range(n):
            names["iteration"] = i
            yield from _execute(node.body, ctx, names)
        if outer is None:
            names.pop("iteration", None)
        else:
            names["iteration"] = outer
    elif isinstance(node, Runon):
        for cond_ast, block in zip(node._cond_asts, node.blocks):
            if evaluate(cond_ast, names):
                yield from _execute(block, ctx, names)
                break
    elif isinstance(node, Message):
        src = _require_int(evaluate(node._src_ast, names), "Message from", node.line)
        dst = _require_int(evaluate(node._dst_ast, names), "Message to", node.line)
        size = _require_int(evaluate(node._size_ast, names), "Message size", node.line)
        me = ctx.procnum
        if node.kind.is_send:
            if src != me:
                raise ModelError(
                    f"line {node.line}: send directive reached by process "
                    f"{me} but from = {src}; guard it with Runon"
                )
            yield ctx.send(dst, size, label=f"{node.kind.value}@{node.line}")
        else:
            if dst != me:
                raise ModelError(
                    f"line {node.line}: recv directive reached by process "
                    f"{me} but to = {dst}; guard it with Runon"
                )
            yield ctx.recv(src, label=f"{node.kind.value}@{node.line}")
    elif isinstance(node, Collective):
        size = _require_int(
            evaluate(node._size_ast, names), "Collective size", node.line
        )
        root = _require_int(
            evaluate(node._root_ast, names), "Collective root", node.line
        )
        if size < 0:
            raise ModelError(f"line {node.line}: negative collective size {size}")
        if node.op in ("bcast", "reduce") and not 0 <= root < ctx.numprocs:
            raise ModelError(
                f"line {node.line}: collective root {root} outside "
                f"0..{ctx.numprocs - 1}"
            )
        label = f"coll_{node.op}@{node.line}"
        for prim in lower_collective(
            node.op, ctx.procnum, ctx.numprocs, size, root
        ):
            if prim[0] == "send":
                yield ctx.send(prim[1], prim[2], label=label)
            else:
                yield ctx.recv(prim[1], label=label)
    else:
        raise ModelError(f"unknown directive node {type(node).__name__}")


def compile_model(
    model: Block, params: dict | None = None
) -> Callable[[ProcContext], Generator]:
    """Compile a directive tree into a VirtualMachine program factory.

    *params* supplies values for free variables in directive expressions
    (the paper's Jacobi model needs ``xsize``; ``sizeof(...)`` is built
    in).  ``procnum``, ``numprocs`` and the innermost ``iteration`` are
    bound automatically.
    """
    params = dict(params or {})

    def program(ctx: ProcContext) -> Generator:
        names = dict(params)
        names["procnum"] = ctx.procnum
        names["numprocs"] = ctx.numprocs
        return _execute(model, ctx, names)

    return program


def model_messages(model: Block, nprocs: int, params: dict | None = None) -> int:
    """Statically count the messages the model will send in total --
    useful for sanity checks and cost estimates before a long run."""
    program = compile_model(model, params)
    count = 0
    for p in range(nprocs):
        ctx = ProcContext(p, nprocs, params)
        for op in program(ctx):
            if op[0] == "send":
                count += 1
    return count
