"""Compilation of model programs to static per-rank schedules.

The generator interpreter (:mod:`repro.pevpm.interpreter`) re-evaluates
directive expressions and resumes a Python generator frame for every
operation of every sweep -- cost the paper's own Section 6 throughput
claim ("67.5 times its actual execution speed") says we cannot afford on
the hot path.  This module pays that cost **once**: :func:`compile_program`
traces a model program through one structural execution and lowers it to
a :class:`CompiledProgram` -- a static schedule of resolved op records
per rank that the scalar and batched virtual machines execute as flat
cursor loops, with no generator resume and no AST dispatch per op.

Why a single trace is sound
---------------------------

The *structure* of a model program -- which operations each process
executes, which message matches which receive -- is independent of the
sampled times for every construct except the wildcard receive:

* **Fixed-source receives** match per-(src, dst) FIFO order.  A sender's
  messages to one destination depart in program order with nondecreasing
  departure times in every run, so "oldest outstanding" is simply "first
  sent" -- a structural property.
* **Round structure** is structural too: the sweep/match alternation
  advances every runnable process to its next receive, and which
  receives *can* complete in a match phase depends only on which
  messages exist, not on their clock values.  Candidates are partitioned
  by destination (only process ``p`` removes messages addressed to
  ``p``), so the serving order within a phase cannot change the
  structure either.
* **Wildcard receives** with exactly one candidate source at their match
  phase are structural for the same reason.  With two or more candidate
  sources the winner depends on sampled arrival times -- a genuine
  divergence point.  The tracer detects this *at compile time* and marks
  the program :attr:`~CompiledProgram.divergent`; the virtual machines
  then fall back to the generator path, preserving the batched engine's
  congruent-sub-batch splitting and seed-stream forking rules exactly.

Because the compiled executor replaces only the *source of ops* (a
cursor over the traced schedule instead of ``generator.send``) and
shares the runtime sweep/match loop, scoreboard, NIC occupancy chains
and timing draws with the interpreted path, compiled evaluation is
bit-identical to interpreted evaluation: the same operations occur in
the same order and consume the RNG stream identically -- under
deterministic *and* distribution timing models alike.

Schedules are cached per (model fingerprint, params, nprocs) by
:func:`compiled_program_for`; per-``ppn`` op lists (with the intra-node
flag of every send resolved) are derived lazily by
:meth:`CompiledProgram.schedule`.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Callable

from .directives import Block
from .interpreter import compile_model
from .machine import ANY_SOURCE, MatchInfo, ModelDeadlock, ProcContext
from .scoreboard import ScoreboardEntry

__all__ = [
    "CompiledProgram",
    "compile_program",
    "compiled_program_for",
    "clear_compile_cache",
]


class CompiledProgram:
    """A model program lowered to static per-rank op schedules.

    ``ops[p]`` is the exact operation sequence process *p* executes:
    ``("serial", seconds, label)``, ``("send", dst, size, label,
    payload)`` and ``("recv", src, label)`` tuples in program order --
    the same records the generator interpreter yields, resolved once.
    :meth:`schedule` derives the executable per-``ppn`` form, where each
    send additionally carries its precomputed intra-node flag.

    A :attr:`divergent` program (a wildcard receive whose winner is
    timing-dependent) carries no schedule; the virtual machines run its
    :attr:`fallback` -- the original generator program -- instead, so
    divergence handling (sub-batch splitting, generator forking) is
    untouched.
    """

    __slots__ = (
        "nprocs", "params", "ops", "divergent", "divergence", "fallback",
        "_schedules",
    )

    def __init__(
        self,
        nprocs: int,
        params: dict | None,
        ops: list[list[tuple]] | None,
        fallback: Callable,
        divergent: bool = False,
        divergence: tuple | None = None,
    ):
        self.nprocs = nprocs
        self.params = params
        self.ops = ops
        self.fallback = fallback
        self.divergent = divergent
        #: ``(procnum, op_index, round)`` of the first timing-dependent
        #: wildcard receive, when divergent (diagnostics).
        self.divergence = divergence
        self._schedules: dict[int, list[list[tuple]]] = {}

    @property
    def messages(self) -> int:
        """Total messages the program sends (0 for divergent programs,
        whose schedule is unknown at compile time)."""
        if self.ops is None:
            return 0
        return sum(1 for ops in self.ops for op in ops if op[0] == "send")

    @property
    def n_ops(self) -> int:
        """Total op records across all ranks (0 when divergent)."""
        if self.ops is None:
            return 0
        return sum(len(ops) for ops in self.ops)

    def schedule(self, ppn: int) -> list[list[tuple]]:
        """The executable per-rank op lists for a machine with *ppn*
        processes per node: sends become ``("send", dst, size, label,
        payload, intra)`` with the intra-node flag precomputed, so the
        hot loop never divides.  Cached per ppn."""
        if self.ops is None:
            raise ValueError("divergent program has no static schedule")
        sched = self._schedules.get(ppn)
        if sched is None:
            sched = []
            for p, ops in enumerate(self.ops):
                node = p // ppn
                out = []
                for op in ops:
                    if op[0] == "send":
                        _k, dst, size, label, payload = op
                        out.append(
                            ("send", dst, size, label, payload,
                             node == dst // ppn)
                        )
                    else:
                        out.append(op)
                sched.append(out)
            self._schedules[ppn] = sched
        return sched

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.divergent:
            return (
                f"<CompiledProgram nprocs={self.nprocs} divergent "
                f"at {self.divergence}>"
            )
        return (
            f"<CompiledProgram nprocs={self.nprocs} ops={self.n_ops} "
            f"messages={self.messages}>"
        )


def _as_program(model, params: dict | None) -> Callable:
    """Normalise a directive Block or program callable to the generator
    factory form both virtual machines accept."""
    if isinstance(model, Block):
        return compile_model(model, params)
    if callable(model):
        return model
    raise TypeError(
        "model must be a directive Block or a program callable(ctx) -> generator"
    )


def compile_program(
    model,
    nprocs: int,
    params: dict | None = None,
    max_rounds: int = 10_000_000,
) -> CompiledProgram:
    """Trace *model* once and lower it to a :class:`CompiledProgram`.

    *model* is a directive ``Block`` or a program callable.  The trace
    replays the virtual machines' sweep/match round structure without
    any timing: processes advance to their next receive, then every
    receive with a structural candidate completes with the exact
    :class:`~repro.pevpm.machine.MatchInfo` the runtime would deliver
    (per-pair FIFO).  A wildcard receive facing two or more candidate
    sources marks the program divergent (see the module docstring); a
    round in which nothing completes raises
    :class:`~repro.pevpm.machine.ModelDeadlock` -- the paper's automatic
    deadlock discovery, surfaced at compile time.
    """
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    program = _as_program(model, params)
    ops: list[list[tuple]] = [[] for _ in range(nprocs)]
    gens = [program(ProcContext(p, nprocs, params)) for p in range(nprocs)]
    resume: list[MatchInfo | None] = [None] * nprocs
    done = [False] * nprocs
    blocked: list[int | None] = [None] * nprocs  #: recv source pattern
    # Structural scoreboard: per-(src, dst) FIFO of (size, payload).
    pending: dict[tuple[int, int], list] = {}
    runnable = list(range(nprocs))
    rounds = 0

    def _divergent(p: int, rnd: int) -> CompiledProgram:
        for g in gens:
            g.close()
        return CompiledProgram(
            nprocs, params, None, program,
            divergent=True, divergence=(p, len(ops[p]) - 1, rnd),
        )

    while True:
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError(
                f"model exceeded {max_rounds} sweep/match rounds during trace"
            )
        for p in runnable:
            gen = gens[p]
            while True:
                try:
                    op = gen.send(resume[p])
                except StopIteration:
                    done[p] = True
                    break
                finally:
                    resume[p] = None
                ops[p].append(op)
                kind = op[0]
                if kind == "serial":
                    continue
                if kind == "send":
                    pending.setdefault((p, op[1]), []).append((op[2], op[4]))
                    continue
                if kind == "recv":
                    blocked[p] = op[1]
                    break
                raise ValueError(f"unknown model operation {op!r}")
        if all(done):
            break
        runnable = []
        for p in range(nprocs):
            if done[p] or blocked[p] is None:
                continue
            src = blocked[p]
            if src == ANY_SOURCE:
                candidates = [
                    s for s in range(nprocs) if pending.get((s, p))
                ]
                if len(candidates) > 1:
                    # Timing decides the winner: a genuine decision point.
                    return _divergent(p, rounds)
                if not candidates:
                    continue  # stays blocked; may match a later round
                src = candidates[0]
            queue = pending.get((src, p))
            if not queue:
                continue
            size, payload = queue.pop(0)
            resume[p] = MatchInfo(src, size, payload)
            blocked[p] = None
            runnable.append(p)
        if not runnable:
            orphans = [
                ScoreboardEntry(
                    msg_id=i, src=s, dst=d, size=size, depart_time=0.0,
                    payload=payload,
                )
                for i, ((s, d), queue) in enumerate(sorted(pending.items()))
                for size, payload in queue
            ]
            stuck = {
                p: blocked[p]  # type: ignore[dict-item]
                for p in range(nprocs)
                if not done[p] and blocked[p] is not None
            }
            # Each blocked rank's last traced op is the receive it
            # stalled at -- name it so the diagnostic points at the
            # offending directive, not just the scoreboard orphans.
            raise ModelDeadlock(
                stuck, orphans, sites={p: len(ops[p]) - 1 for p in stuck}
            )
    return CompiledProgram(nprocs, params, ops, program)


# -- the compile cache -----------------------------------------------------------
# Keyed by (model fingerprint, nprocs): the same identity the on-disk
# PredictionCache hashes, so any model the prediction cache can address
# compiles exactly once per process (workers included -- each worker
# process carries its own cache).  Unfingerprintable models (closures
# pickle refuses) compile per call; the per-group program cache in
# repro.pevpm.parallel still bounds that to once per (group, process).
_COMPILE_CACHE: dict[tuple[str, int], CompiledProgram] = {}


def clear_compile_cache() -> None:
    """Drop every cached compiled program (tests / memory pressure)."""
    _COMPILE_CACHE.clear()


def compiled_program_for(
    model, nprocs: int, params: dict | None = None
) -> CompiledProgram:
    """The cached form of :func:`compile_program`."""
    try:
        blob = pickle.dumps((model, params), protocol=4)
        key = (hashlib.sha256(blob).hexdigest(), nprocs)
    except Exception:
        key = None
    if key is not None:
        hit = _COMPILE_CACHE.get(key)
        if hit is not None:
            return hit
    compiled = compile_program(model, nprocs, params)
    if key is not None:
        _COMPILE_CACHE[key] = compiled
    return compiled
