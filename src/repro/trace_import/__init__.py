"""Import recorded MPI event logs as predictable model programs.

Bridges measurement to modelling: a trace recorded on a real run (the
documented JSON-lines schema, or a small OTF2-like text subset) parses
into a validated, content-addressed :class:`TraceProgram` whose
:meth:`~TraceProgram.model` replays on all three PEVPM engines --
scalar, batched, compiled -- with bit-identical predictions.  The
:class:`ProgramStore` gives the service a shared content-addressed home
for imported programs (``POST /programs`` -> ``/predict`` with
``model=imported``).
"""

from .importer import (
    TraceDeadlock,
    TraceError,
    TraceModel,
    TraceProgram,
    parse_jsonl,
    parse_otf2_text,
    parse_trace,
    sample_trace,
)
from .store import ProgramStore

__all__ = [
    "ProgramStore",
    "TraceDeadlock",
    "TraceError",
    "TraceModel",
    "TraceProgram",
    "parse_jsonl",
    "parse_otf2_text",
    "parse_trace",
    "sample_trace",
]
