"""Content-addressed store of imported trace programs.

The registry's little sibling: the same CAS discipline
(:func:`repro.registry.store._atomic_write` -- mkstemp + fsync + atomic
rename) over :class:`~repro.trace_import.importer.TraceProgram`
documents, so every shard of a deployment sharing one disk root sees
every upload with no coordination.  Programs are *only* addressed by
fingerprint -- no aliases -- which keeps them immutable end to end: a
``/predict`` keyed on a program ref can be cached forever, and the
model-group cache in the service never goes stale.

Layout (``root/programs/`` lives under the registry root when the
service has one, so one ``--registry-root`` wires up both planes):

    root/prog-<fingerprint>.json   -- canonical doc + name/meta envelope

With ``root=None`` the store is in-memory, the un-configured default.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Callable

from ..registry.store import (
    FINGERPRINT_RE,
    NotOwner,
    RegistryError,
    UnknownRef,
    _atomic_write,
)
from .importer import TraceProgram

__all__ = ["ProgramStore"]


class ProgramStore:
    """CAS + LRU over imported :class:`TraceProgram` artifacts."""

    def __init__(self, root: str | Path | None = None, lru_size: int = 16):
        self.root = Path(root) if root is not None else None
        self.lru_size = lru_size
        self._lru: OrderedDict[str, TraceProgram] = OrderedDict()
        self._lock = threading.Lock()
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
        self._mem: dict[str, str] = {}

    def _path(self, fingerprint: str) -> Path:
        return self.root / f"prog-{fingerprint}.json"

    # -- population --------------------------------------------------------------
    def put(
        self,
        program: TraceProgram,
        tenant: str = "public",
        source: str | None = None,
        check: Callable[[int], None] | None = None,
    ) -> dict:
        """Store *program* under its fingerprint; returns its meta.

        *check(nbytes)* is the tenant quota hook, run before any write
        and skipped when the content is already stored (re-importing an
        existing trace is free and idempotent).
        """
        fingerprint = program.fingerprint
        existing = self.meta(fingerprint)
        if existing is not None:
            with self._lock:
                self._lru_insert(fingerprint, program)
            return existing
        envelope = {
            "name": program.name,
            "tenant": tenant,
            "program": program.canonical(),
        }
        if source is not None:
            envelope["source"] = source
        text = json.dumps(envelope, sort_keys=True)
        if check is not None:
            check(len(text))
        if self.root is None:
            with self._lock:
                self._mem.setdefault(fingerprint, text)
                self._lru_insert(fingerprint, program)
        else:
            path = self._path(fingerprint)
            if not path.exists():
                _atomic_write(path, text)
            with self._lock:
                self._lru_insert(fingerprint, program)
        meta = dict(program.meta())
        meta["tenant"] = tenant
        meta["bytes"] = len(text)
        if source is not None:
            meta["source"] = source
        return meta

    def _lru_insert(self, fingerprint: str, program: TraceProgram) -> None:
        if self.lru_size <= 0:
            return
        self._lru[fingerprint] = program
        self._lru.move_to_end(fingerprint)
        while len(self._lru) > self.lru_size:
            self._lru.popitem(last=False)

    # -- retrieval ---------------------------------------------------------------
    def get(self, ref: str) -> TraceProgram:
        """Fingerprint -> validated :class:`TraceProgram` (404 on miss).

        Misses re-validate and re-fingerprint the stored document, so a
        corrupt or tampered file can never impersonate its address; it
        is dropped and reported as unknown (re-import repairs it).
        """
        if not isinstance(ref, str) or not FINGERPRINT_RE.match(ref):
            raise RegistryError(
                f"malformed program ref {ref!r} (want a sha256 fingerprint)"
            )
        with self._lock:
            program = self._lru.get(ref)
            if program is not None:
                self._lru.move_to_end(ref)
                return program
        text = self._read(ref)
        try:
            envelope = json.loads(text)
            doc = envelope["program"]
            program = TraceProgram.build(
                str(envelope.get("name", "trace")),
                doc["nprocs"],
                [[tuple(event) for event in rank] for rank in doc["ranks"]],
            )
            if program.fingerprint != ref:
                raise ValueError("content does not match its fingerprint")
        except (KeyError, TypeError, ValueError):
            self._drop(ref)
            raise UnknownRef(
                f"program {ref[:16]}... was corrupt and has been removed; "
                f"import it again"
            ) from None
        with self._lock:
            self._lru_insert(ref, program)
        return program

    def _read(self, fingerprint: str) -> str:
        if self.root is None:
            with self._lock:
                text = self._mem.get(fingerprint)
            if text is None:
                raise UnknownRef(
                    f"no imported program with fingerprint {fingerprint[:16]}..."
                )
            return text
        try:
            return self._path(fingerprint).read_text()
        except OSError:
            raise UnknownRef(
                f"no imported program with fingerprint {fingerprint[:16]}..."
            ) from None

    def _drop(self, fingerprint: str) -> None:
        if self.root is None:
            with self._lock:
                self._mem.pop(fingerprint, None)
                self._lru.pop(fingerprint, None)
            return
        path = self._path(fingerprint)
        try:
            path.replace(path.with_suffix(".corrupt"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        with self._lock:
            self._lru.pop(fingerprint, None)

    # -- removal -----------------------------------------------------------------
    def delete(self, ref: str, tenant: str | None = None) -> str:
        """Remove a program; with *tenant*, the caller must own it."""
        program_meta = self.meta(ref) if FINGERPRINT_RE.match(ref or "") else None
        if program_meta is None:
            raise UnknownRef(f"no imported program with fingerprint {ref!r}")
        owner = program_meta.get("tenant")
        if tenant is not None and owner is not None and owner != tenant:
            raise NotOwner(
                f"program {ref[:16]}... belongs to tenant {owner!r}, "
                f"not {tenant!r}"
            )
        if self.root is None:
            with self._lock:
                self._mem.pop(ref, None)
                self._lru.pop(ref, None)
        else:
            try:
                self._path(ref).unlink()
            except OSError:
                pass
            with self._lock:
                self._lru.pop(ref, None)
        return ref

    # -- introspection -----------------------------------------------------------
    def meta(self, fingerprint: str) -> dict | None:
        try:
            text = self._read(fingerprint)
        except UnknownRef:
            return None
        try:
            envelope = json.loads(text)
            doc = envelope["program"]
        except (KeyError, TypeError, ValueError):
            return None
        ranks = doc.get("ranks", [])
        return {
            "fingerprint": fingerprint,
            "name": envelope.get("name", "trace"),
            "tenant": envelope.get("tenant", "public"),
            "nprocs": doc.get("nprocs", 0),
            "events": sum(len(rank) for rank in ranks),
            "messages": sum(
                1 for rank in ranks for event in rank if event[0] == "send"
            ),
            "bytes": len(text),
            **(
                {"source": envelope["source"]} if "source" in envelope else {}
            ),
        }

    def fingerprints(self) -> list[str]:
        if self.root is None:
            with self._lock:
                return sorted(self._mem)
        return sorted(
            p.stem[5:]
            for p in self.root.glob("prog-*.json")
            if FINGERPRINT_RE.match(p.stem[5:])
        )

    def entries(self) -> list[dict]:
        """One meta document per stored program (``GET /programs``)."""
        out = []
        for fingerprint in self.fingerprints():
            meta = self.meta(fingerprint)
            if meta is not None:
                out.append(meta)
        return out

    def stats(self) -> dict:
        total = 0
        fingerprints = self.fingerprints()
        for fingerprint in fingerprints:
            meta = self.meta(fingerprint)
            if meta is not None:
                total += int(meta.get("bytes", 0))
        return {
            "programs": len(fingerprints),
            "bytes": total,
            "root": str(self.root) if self.root is not None else None,
        }

    def __len__(self) -> int:
        return len(self.fingerprints())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.root if self.root is not None else "memory"
        return f"<ProgramStore {where} programs={len(self)}>"
