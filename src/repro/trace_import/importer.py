"""Import recorded MPI event logs as PEVPM model programs.

A trace is the flat record of what each rank *did* -- compute segments,
sends, receives -- exactly the operation vocabulary the PEVPM machines
execute.  Importing one therefore needs no inference: each rank's event
list replays verbatim as a model-program generator, and the existing
engines (scalar, batched, compiled) predict it with zero new semantics.

Two input formats:

* **JSON lines** (canonical, what :meth:`TraceProgram.to_jsonl`
  exports).  First line is the header, every further line one event::

      {"trace": "repro-mpi", "version": 1, "nprocs": 2, "name": "ping"}
      {"rank": 0, "op": "compute", "seconds": 1e-5}
      {"rank": 0, "op": "send", "dst": 1, "bytes": 4096}
      {"rank": 1, "op": "recv", "src": 0}

  ``"src": "any"`` (or ``-1``) is a wildcard receive.  Event order
  *within a rank* is that rank's program order; interleaving across
  ranks carries no meaning (ranks run concurrently).

* **OTF2-like text**: the whitespace-separated subset real OTF2
  ``otf2-print`` dumps reduce to once regions are folded away.  ``#``
  starts a comment, ``NPROCS n`` (required) and ``NAME s`` head the
  file, then one event per line::

      NPROCS 2
      0 COMPUTE 1e-5
      0 MPI_ISEND 1 4096
      1 MPI_RECV 0

  ``MPI_SEND``/``MPI_ISEND`` and ``MPI_RECV``/``MPI_IRECV`` are
  synonyms (PEVPM models both by local cost + matching), and ``ANY``
  is the wildcard source.

Validation happens at construction: rank indices in range, matched
send/receive counts, and -- by tracing the program through
:func:`repro.pevpm.compile.compile_program` -- freedom from ordering
deadlock (a recv-before-send cycle raises
:class:`~repro.pevpm.machine.ModelDeadlock`, reported as a
:class:`TraceError` naming the stuck ranks and op indices).  A valid
trace is content-addressed by the SHA-256 of its canonical JSON
document, so import -> export -> import is fingerprint-stable and the
service can cache and shard-route imported programs safely.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..pevpm.compile import compile_program
from ..pevpm.machine import ANY_SOURCE, ModelDeadlock, ProcContext

__all__ = [
    "TraceDeadlock",
    "TraceError",
    "TraceModel",
    "TraceProgram",
    "parse_trace",
    "parse_jsonl",
    "parse_otf2_text",
    "sample_trace",
]

_FORMAT = "repro-trace/1"
_JSONL_MAGIC = "repro-mpi"
_MAX_RANKS = 4096
_MAX_EVENTS = 1_000_000


class TraceError(ValueError):
    """A malformed or semantically invalid trace (HTTP 422)."""


class TraceDeadlock(TraceError):
    """A structurally well-formed trace whose receive ordering deadlocks
    (the count check balances but a recv-before-send cycle exists).
    Distinguished so scripts can tell deadlock discovery -- a PEVPM
    feature -- from plain parse failures (CLI exit code 3)."""


class TraceModel:
    """The replayable model program of an imported trace.

    A picklable callable (so the process-pool workers, the on-disk
    prediction cache, and the compile cache can all fingerprint it):
    ``program(ctx)`` yields rank ``ctx.procnum``'s recorded events in
    order.  The model is pinned to the trace's rank count -- predicting
    it at a different ``nprocs`` is a request error, not a silent
    truncation.
    """

    __slots__ = ("name", "nprocs", "ranks")

    def __init__(self, name: str, nprocs: int, ranks: tuple):
        self.name = name
        self.nprocs = nprocs
        self.ranks = ranks

    def __call__(self, ctx: ProcContext):
        if ctx.numprocs != self.nprocs:
            raise ValueError(
                f"trace {self.name!r} was recorded on {self.nprocs} rank(s); "
                f"predict it with nprocs={self.nprocs}"
            )
        for i, event in enumerate(self.ranks[ctx.procnum]):
            kind = event[0]
            if kind == "compute":
                yield ctx.serial(event[1], label=f"trace-compute[{i}]")
            elif kind == "send":
                yield ctx.send(event[1], event[2], label=f"trace-send[{i}]")
            else:
                yield ctx.recv(event[1], label=f"trace-recv[{i}]")

    def __getstate__(self):
        return (self.name, self.nprocs, self.ranks)

    def __setstate__(self, state):
        self.name, self.nprocs, self.ranks = state


@dataclass(frozen=True)
class TraceProgram:
    """A validated, content-addressed imported trace."""

    name: str
    nprocs: int
    #: per-rank event tuples: ``("compute", seconds)``,
    #: ``("send", dst, bytes)``, ``("recv", src)`` (src -1 = wildcard)
    ranks: tuple
    fingerprint: str = field(compare=False)

    @classmethod
    def build(
        cls, name: str, nprocs: int, events: list[list[tuple]]
    ) -> "TraceProgram":
        """Validate raw per-rank events and seal them into a program."""
        _validate_events(nprocs, events)
        ranks = tuple(tuple(rank) for rank in events)
        program = cls(
            name=str(name),
            nprocs=nprocs,
            ranks=ranks,
            fingerprint=_fingerprint(nprocs, ranks),
        )
        _check_deadlock(program)
        return program

    @property
    def events(self) -> int:
        return sum(len(rank) for rank in self.ranks)

    @property
    def messages(self) -> int:
        return sum(
            1 for rank in self.ranks for event in rank if event[0] == "send"
        )

    def canonical(self) -> dict:
        """The content document the fingerprint hashes (name excluded:
        two recordings of the same program are the same program)."""
        return {
            "format": _FORMAT,
            "nprocs": self.nprocs,
            "ranks": [[list(event) for event in rank] for rank in self.ranks],
        }

    def model(self) -> TraceModel:
        return TraceModel(self.name, self.nprocs, self.ranks)

    def meta(self) -> dict:
        return {
            "name": self.name,
            "nprocs": self.nprocs,
            "events": self.events,
            "messages": self.messages,
            "fingerprint": self.fingerprint,
        }

    def to_jsonl(self) -> str:
        """Serialise back to the canonical JSON-lines form (round-trips
        to the same fingerprint)."""
        lines = [
            json.dumps(
                {
                    "trace": _JSONL_MAGIC,
                    "version": 1,
                    "nprocs": self.nprocs,
                    "name": self.name,
                },
                sort_keys=True,
            )
        ]
        for rank, events in enumerate(self.ranks):
            for event in events:
                if event[0] == "compute":
                    doc = {"rank": rank, "op": "compute", "seconds": event[1]}
                elif event[0] == "send":
                    doc = {
                        "rank": rank, "op": "send",
                        "dst": event[1], "bytes": event[2],
                    }
                else:
                    src = "any" if event[1] == ANY_SOURCE else event[1]
                    doc = {"rank": rank, "op": "recv", "src": src}
                lines.append(json.dumps(doc, sort_keys=True))
        return "\n".join(lines) + "\n"


def _fingerprint(nprocs: int, ranks: tuple) -> str:
    doc = {
        "format": _FORMAT,
        "nprocs": nprocs,
        "ranks": [[list(event) for event in rank] for rank in ranks],
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()


def _validate_events(nprocs: int, events: list[list[tuple]]) -> None:
    if not isinstance(nprocs, int) or isinstance(nprocs, bool) or nprocs < 1:
        raise TraceError("nprocs must be a positive integer")
    if nprocs > _MAX_RANKS:
        raise TraceError(f"nprocs {nprocs} exceeds the limit of {_MAX_RANKS}")
    if len(events) != nprocs:
        raise TraceError(f"expected {nprocs} rank event lists, got {len(events)}")
    total = sum(len(rank) for rank in events)
    if total > _MAX_EVENTS:
        raise TraceError(f"trace has {total} events; limit is {_MAX_EVENTS}")
    # Send/receive conservation: every send must have a receive on its
    # destination and vice versa.  Wildcard receives absorb whatever
    # fixed receives leave over, per destination.
    sends: dict[tuple[int, int], int] = {}
    fixed_recvs: dict[tuple[int, int], int] = {}
    wild_recvs: dict[int, int] = {}
    for rank, rank_events in enumerate(events):
        for i, event in enumerate(rank_events):
            kind = event[0]
            where = f"rank {rank} event {i}"
            if kind == "compute":
                if event[1] < 0:
                    raise TraceError(f"{where}: negative compute time")
            elif kind == "send":
                dst = event[1]
                if not 0 <= dst < nprocs:
                    raise TraceError(
                        f"{where}: send to unknown rank {dst} "
                        f"(trace has {nprocs} ranks)"
                    )
                if dst == rank:
                    raise TraceError(f"{where}: rank {rank} sends to itself")
                if event[2] < 0:
                    raise TraceError(f"{where}: negative message size")
                sends[(rank, dst)] = sends.get((rank, dst), 0) + 1
            elif kind == "recv":
                src = event[1]
                if src == ANY_SOURCE:
                    wild_recvs[rank] = wild_recvs.get(rank, 0) + 1
                elif not 0 <= src < nprocs:
                    raise TraceError(
                        f"{where}: receive from unknown rank {src} "
                        f"(trace has {nprocs} ranks)"
                    )
                elif src == rank:
                    raise TraceError(
                        f"{where}: rank {rank} receives from itself"
                    )
                else:
                    fixed_recvs[(rank, src)] = fixed_recvs.get((rank, src), 0) + 1
            else:
                raise TraceError(f"{where}: unknown event kind {kind!r}")
    for (dst, src), n in sorted(fixed_recvs.items()):
        have = sends.get((src, dst), 0)
        if n > have:
            raise TraceError(
                f"rank {dst} posts {n} receive(s) from rank {src} but the "
                f"trace records only {have} matching send(s)"
            )
    for dst in range(nprocs):
        arriving = sum(n for (s, d), n in sends.items() if d == dst)
        posted = wild_recvs.get(dst, 0) + sum(
            n for (d, s), n in fixed_recvs.items() if d == dst
        )
        if posted != arriving:
            kind = "unmatched send(s)" if arriving > posted else (
                "unmatched receive(s)"
            )
            raise TraceError(
                f"rank {dst}: {arriving} message(s) arrive but {posted} "
                f"receive(s) are posted -- {abs(arriving - posted)} {kind}"
            )


def _check_deadlock(program: TraceProgram) -> None:
    """Trace the imported program once: a recv-before-send cycle that
    the count check cannot see surfaces here as a compile-time
    deadlock (with rank + op-index diagnostics)."""
    try:
        compile_program(program.model(), program.nprocs)
    except ModelDeadlock as exc:
        raise TraceDeadlock(f"trace deadlocks: {exc}") from None


# -- parsers -------------------------------------------------------------------

def parse_jsonl(text: str, name: str | None = None) -> TraceProgram:
    """Parse the JSON-lines trace format (see module docstring)."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise TraceError("empty trace")
    header = _json_line(lines[0], 1)
    if header.get("trace") != _JSONL_MAGIC:
        raise TraceError(
            f'line 1: header must carry "trace": "{_JSONL_MAGIC}"'
        )
    if header.get("version") != 1:
        raise TraceError(f"unsupported trace version {header.get('version')!r}")
    nprocs = header.get("nprocs")
    if not isinstance(nprocs, int) or isinstance(nprocs, bool) or nprocs < 1:
        raise TraceError("line 1: header needs a positive integer nprocs")
    events: list[list[tuple]] = [[] for _ in range(nprocs)]
    for lineno, line in enumerate(lines[1:], start=2):
        doc = _json_line(line, lineno)
        rank = doc.get("rank")
        if not isinstance(rank, int) or isinstance(rank, bool) or not (
            0 <= rank < nprocs
        ):
            raise TraceError(
                f"line {lineno}: unknown rank {rank!r} "
                f"(trace has {nprocs} ranks)"
            )
        op = doc.get("op")
        if op == "compute":
            seconds = doc.get("seconds")
            if not isinstance(seconds, (int, float)) or isinstance(seconds, bool):
                raise TraceError(f"line {lineno}: compute needs numeric seconds")
            events[rank].append(("compute", float(seconds)))
        elif op == "send":
            dst, nbytes = doc.get("dst"), doc.get("bytes")
            if not isinstance(dst, int) or isinstance(dst, bool):
                raise TraceError(f"line {lineno}: send needs an integer dst")
            if not isinstance(nbytes, int) or isinstance(nbytes, bool):
                raise TraceError(f"line {lineno}: send needs integer bytes")
            events[rank].append(("send", dst, nbytes))
        elif op == "recv":
            src = doc.get("src")
            if src in ("any", "ANY", ANY_SOURCE):
                src = ANY_SOURCE
            elif not isinstance(src, int) or isinstance(src, bool):
                raise TraceError(
                    f'line {lineno}: recv needs an integer src or "any"'
                )
            events[rank].append(("recv", src))
        else:
            raise TraceError(f"line {lineno}: unknown op {op!r}")
    return TraceProgram.build(
        name if name is not None else str(header.get("name", "trace")),
        nprocs,
        events,
    )


def _json_line(line: str, lineno: int) -> dict:
    try:
        doc = json.loads(line)
    except ValueError:
        raise TraceError(f"line {lineno}: not valid JSON") from None
    if not isinstance(doc, dict):
        raise TraceError(f"line {lineno}: expected a JSON object")
    return doc


def parse_otf2_text(text: str, name: str | None = None) -> TraceProgram:
    """Parse the OTF2-like text subset (see module docstring)."""
    nprocs: int | None = None
    trace_name = name
    events: list[list[tuple]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        head = parts[0].upper()
        if head == "NPROCS":
            if nprocs is not None:
                raise TraceError(f"line {lineno}: duplicate NPROCS")
            nprocs = _otf2_int(parts, 1, lineno, "NPROCS")
            if nprocs < 1:
                raise TraceError(f"line {lineno}: NPROCS must be >= 1")
            events = [[] for _ in range(nprocs)]
            continue
        if head == "NAME":
            if len(parts) < 2:
                raise TraceError(f"line {lineno}: NAME needs a value")
            if trace_name is None:
                trace_name = " ".join(parts[1:])
            continue
        if nprocs is None:
            raise TraceError(
                f"line {lineno}: NPROCS must come before any event"
            )
        rank = _otf2_int(parts, 0, lineno, "rank")
        if not 0 <= rank < nprocs:
            raise TraceError(
                f"line {lineno}: unknown rank {rank} (trace has {nprocs} ranks)"
            )
        op = parts[1].upper() if len(parts) > 1 else ""
        if op == "COMPUTE":
            if len(parts) != 3:
                raise TraceError(f"line {lineno}: COMPUTE takes <seconds>")
            try:
                seconds = float(parts[2])
            except ValueError:
                raise TraceError(
                    f"line {lineno}: bad COMPUTE seconds {parts[2]!r}"
                ) from None
            events[rank].append(("compute", seconds))
        elif op in ("MPI_SEND", "MPI_ISEND"):
            if len(parts) != 4:
                raise TraceError(f"line {lineno}: {op} takes <dst> <bytes>")
            events[rank].append(
                (
                    "send",
                    _otf2_int(parts, 2, lineno, "dst"),
                    _otf2_int(parts, 3, lineno, "bytes"),
                )
            )
        elif op in ("MPI_RECV", "MPI_IRECV"):
            if len(parts) != 3:
                raise TraceError(f"line {lineno}: {op} takes <src|ANY>")
            if parts[2].upper() == "ANY":
                src = ANY_SOURCE
            else:
                src = _otf2_int(parts, 2, lineno, "src")
            events[rank].append(("recv", src))
        else:
            raise TraceError(f"line {lineno}: unknown event {parts[1:2]!r}")
    if nprocs is None:
        raise TraceError("trace has no NPROCS header")
    return TraceProgram.build(trace_name or "trace", nprocs, events)


def _otf2_int(parts: list[str], idx: int, lineno: int, what: str) -> int:
    try:
        return int(parts[idx])
    except (IndexError, ValueError):
        got = parts[idx] if idx < len(parts) else "<missing>"
        raise TraceError(f"line {lineno}: bad {what} {got!r}") from None


def parse_trace(text: str, name: str | None = None) -> TraceProgram:
    """Auto-detect the format: JSON-lines if the first non-blank line is
    a JSON object, the OTF2-like text subset otherwise."""
    for line in text.splitlines():
        stripped = line.strip()
        if stripped:
            if stripped.startswith("{"):
                return parse_jsonl(text, name)
            return parse_otf2_text(text, name)
    raise TraceError("empty trace")


def sample_trace(nprocs: int = 4, hops: int = 2, nbytes: int = 4096) -> TraceProgram:
    """A small ring trace (each rank computes, sends right, receives
    left, *hops* times) -- the demo input for ``repro import-trace
    --sample`` and the CI workload smoke."""
    if nprocs < 2:
        raise ValueError("sample trace needs nprocs >= 2")
    events: list[list[tuple]] = [[] for _ in range(nprocs)]
    for _ in range(hops):
        for rank in range(nprocs):
            events[rank].append(("compute", 2e-5))
            events[rank].append(("send", (rank + 1) % nprocs, nbytes))
            events[rank].append(("recv", (rank - 1) % nprocs))
    return TraceProgram.build(f"ring{nprocs}", nprocs, events)
