"""Built-in registry fleet: simulated + fitted cluster databases.

Beyond the injected startup database (Perseus, the paper's Section 3
machine), the registry ships with two more modelled fabrics so a fresh
deployment lists a fleet out of the box:

* ``gigabit``          -- the :func:`~repro.simnet.topology.gigabit_cluster`
  follow-on commodity machine (1 Gbit/s links, mild contention);
* ``perseus-degraded`` -- Perseus under heavy cross-traffic: an order
  of magnitude more switch queueing, wider contention jitter, and a
  lossier TCP operating point, the regime where the paper's
  distribution tails dominate mean-based models.

Each seed is produced by the same pipeline a user upload of a topology
spec goes through: ``MPIBench.sweep_isend`` on the ``simnet``
simulator, then per-(op, config, size) parametric fits via
:mod:`~repro.mpibench.distfit` attached to the result metadata before
the database is frozen and registered.
"""

from __future__ import annotations

from ..mpibench.distfit import fit_samples
from ..mpibench.results import DistributionDB
from ..mpibench.runner import BenchSettings, MPIBench
from ..simnet.topology import (
    ClusterSpec,
    TcpModel,
    gigabit_cluster,
    ideal_cluster,
    perseus,
)
from .store import RegistryError, RegistryStore

__all__ = [
    "SPEC_FACTORIES",
    "attach_fits",
    "fit_topology_db",
    "perseus_degraded",
    "seed_builtin",
    "spec_for_cluster",
]

#: default sweep for seeded / server-fitted databases: enough configs
#: for nearest-config lookup at small and medium scale, kept light so
#: startup seeding stays in the low seconds
DEFAULT_CONFIGS = [(1, 2), (2, 1), (8, 1)]
DEFAULT_SIZES = [0, 1024, 4096]


def perseus_degraded(n_nodes: int = 64) -> ClusterSpec:
    """Perseus with a saturated fabric: the contended operating point
    of the paper's Figure 4 discussion, as its own registry entry."""
    return perseus(n_nodes).with_(
        name="perseus-degraded",
        congestion_delay_mean=12e-6,
        jitter_contention_sigma=0.6,
        tcp=TcpModel(
            loss_backlog_threshold=1.2e-3,
            loss_backlog_scale=10e-3,
            loss_max_probability=0.3,
        ),
    )


#: cluster name -> topology factory, for server-side fitting of an
#: uploaded ``{"topology": {"spec": ...}}`` request and for mapping a
#: registry db's ``cluster`` back to a ClusterSpec for model building
SPEC_FACTORIES = {
    "perseus": perseus,
    "gigabit": gigabit_cluster,
    "perseus-degraded": perseus_degraded,
    "ideal": ideal_cluster,
}


def spec_for_cluster(name: str, default: ClusterSpec | None = None) -> ClusterSpec:
    """Topology spec for a registry database's ``cluster`` name."""
    factory = SPEC_FACTORIES.get(name)
    if factory is None:
        if default is not None:
            return default
        raise RegistryError(
            f"unknown cluster topology {name!r} "
            f"(known: {sorted(SPEC_FACTORIES)})"
        )
    return factory()


def attach_fits(db: DistributionDB) -> int:
    """Fit gamma/lognormal families to every histogram's raw samples
    and stash the winning fit in the result metadata (the distfit
    artifact Hunold & Carpen-Amarie treat as first-class).  Returns the
    number of fits attached; histograms without enough samples are
    skipped rather than failing the whole database."""
    fitted = 0
    for op in db.ops():
        for nodes, ppn in db.configs(op):
            result = db.result(op, nodes, ppn)
            fits = {}
            for size, hist in result.histograms.items():
                samples = getattr(hist, "samples", None)
                if samples is None or len(samples) < 8:
                    continue
                try:
                    fits[str(size)] = fit_samples(samples).to_dict()
                except ValueError:
                    continue
            if fits:
                result.metadata["distfit"] = fits
                fitted += len(fits)
    return fitted


def fit_topology_db(
    spec_or_name: ClusterSpec | str,
    *,
    n_nodes: int | None = None,
    configs: list[tuple[int, int]] | None = None,
    sizes: list[int] | None = None,
    reps: int = 24,
    seed: int = 7,
) -> DistributionDB:
    """Simulate a topology with MPIBench and fit its distributions --
    the server-side path behind ``POST /distributions`` with a
    ``topology`` body, and the seeding path below."""
    if isinstance(spec_or_name, str):
        factory = SPEC_FACTORIES.get(spec_or_name)
        if factory is None:
            raise RegistryError(
                f"unknown cluster topology {spec_or_name!r} "
                f"(known: {sorted(SPEC_FACTORIES)})"
            )
        spec = factory(n_nodes) if n_nodes else factory()
    else:
        spec = spec_or_name
    configs = configs or DEFAULT_CONFIGS
    sizes = sizes if sizes is not None else DEFAULT_SIZES
    ppn_cap = getattr(spec, "processors_per_node", 1)
    configs = [
        (nodes, ppn)
        for nodes, ppn in configs
        if nodes <= spec.n_nodes and ppn <= ppn_cap
    ]
    if not configs:
        raise RegistryError(
            f"no benchmark config fits on {spec.n_nodes} node(s) "
            f"with {ppn_cap} processor(s) each"
        )
    settings = BenchSettings(reps=reps, warmup=max(2, reps // 10))
    db = MPIBench(spec, seed=seed, settings=settings).sweep_isend(
        configs, sizes
    )
    attach_fits(db)
    return db


#: alias -> cluster name registered by :func:`seed_builtin`
BUILTIN_SEEDS = [
    ("gigabit@v1", "gigabit"),
    ("perseus-degraded@v1", "perseus-degraded"),
]


def seed_builtin(
    store: RegistryStore,
    *,
    reps: int = 24,
    seed: int = 7,
    tenant: str = "builtin",
) -> dict[str, str]:
    """Fit and register the built-in fleet; idempotent across restarts
    (an alias that already resolves is left untouched, so seeding never
    reverts a promotion).  Returns alias -> fingerprint for what this
    call verified or created."""
    out: dict[str, str] = {}
    for alias, cluster in BUILTIN_SEEDS:
        bare = alias.split("@", 1)[0]
        try:
            out[alias] = store.resolve(alias)
            continue
        except (KeyError, ValueError):
            pass
        db = fit_topology_db(cluster, reps=reps, seed=seed)
        store.put(db, tenant=tenant, source="seed")
        fingerprint = store.set_alias(alias, db.fingerprint(), tenant=tenant)
        # the bare name tracks the latest seeded version unless an
        # operator has already promoted something else onto it
        try:
            store.resolve(bare)
        except (KeyError, ValueError):
            store.set_alias(bare, fingerprint, tenant=tenant)
        out[alias] = fingerprint
    return out
