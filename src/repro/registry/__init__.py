"""Multi-tenant distribution registry: versioned cluster databases.

The prediction service of :mod:`repro.service` originally served
exactly one :class:`~repro.mpibench.results.DistributionDB` loaded at
startup -- one modelled cluster per deployment.  This package turns
that data plane into a *registry*: a content-addressed, versioned
store of distribution databases that the service reads through, so one
deployment serves a fleet of modelled clusters and a new (or
re-fitted) database goes live with an alias flip instead of a restart.

* :mod:`.store`   -- the content-addressed store (CAS keyed by
  ``DistributionDB.fingerprint()``), the human-readable
  alias -> fingerprint index (``perseus@v3``), and an LRU of
  deserialised databases;
* :mod:`.tenants` -- per-tenant namespaces: upload quotas (database
  count / bytes) and a token-bucket request rate riding the service's
  admission layer, keyed by the ``X-Repro-Tenant`` header;
* :mod:`.seeds`   -- the built-in fleet (a gigabit-class topology and
  a degraded, contention-heavy Fast Ethernet variant), each simulated
  with MPIBench and fitted through the :mod:`~repro.mpibench.distfit`
  pipeline, registered at service startup.
"""

from .store import NotOwner, RegistryError, RegistryStore, UnknownRef
from .tenants import (
    QuotaExceeded,
    TenantManager,
    TenantQuota,
    TenantThrottled,
    clean_tenant,
)

__all__ = [
    "NotOwner",
    "QuotaExceeded",
    "RegistryError",
    "RegistryStore",
    "TenantManager",
    "TenantQuota",
    "TenantThrottled",
    "UnknownRef",
    "clean_tenant",
]
