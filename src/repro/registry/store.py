"""Content-addressed, versioned store of distribution databases.

Layout (under one registry root, shared by every shard of a
deployment):

    root/cas/db-<fingerprint>.json   -- the DB document (``to_doc``)
    root/meta/db-<fingerprint>.json  -- ownership + size accounting
    root/aliases/<alias>.json        -- one file per alias

Every write follows the prediction cache's atomicity discipline
(``mkstemp`` + ``fsync`` + ``os.replace``), so concurrent shard
processes need no coordination: two uploads of the same content race
to one CAS path and the last complete rename wins with identical
bytes, and an alias promotion is a single atomic file replacement --
a reader sees the old fingerprint or the new one, never a torn index.
Keeping one file *per alias* (instead of one shared index document)
is what removes the read-modify-write race entirely.

Entries are immutable once written (the path *is* the content hash),
so the per-process LRU of deserialised databases can never serve
stale data; alias resolution re-reads its one small file per lookup,
which is what makes a promotion on any shard instantly visible to all
of them.  A corrupt CAS entry follows the cache's quarantine path:
renamed to ``*.corrupt``, counted, and treated as a plain miss so the
same content can simply be uploaded again.

With ``root=None`` the store is purely in-memory -- the default for an
un-sharded, un-configured service, preserving the old single-database
behaviour with the registry API on top.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Callable

from ..mpibench.results import DistributionDB

__all__ = ["NotOwner", "RegistryError", "RegistryStore", "UnknownRef"]

#: legal aliases / tenant names: filesystem-safe, ``perseus@v3``-style
ALIAS_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._@-]{0,63}$")
#: a full content fingerprint (sha256 hex)
FINGERPRINT_RE = re.compile(r"^[0-9a-f]{64}$")


class RegistryError(ValueError):
    """A malformed registry operation (HTTP 400)."""


class UnknownRef(KeyError):
    """A ref (alias or fingerprint) that resolves to nothing (HTTP 404)."""

    def __str__(self) -> str:  # KeyError quotes its repr by default
        return self.args[0] if self.args else "unknown registry ref"


class NotOwner(RegistryError):
    """A mutation attempted by a tenant that does not own the entry
    (HTTP 403)."""


def _atomic_write(path: Path, text: str) -> None:
    """Write *text* to *path* crash- and concurrency-safely (the
    ``PredictionCache.put`` discipline: unique temp file in the same
    directory, fsync, atomic rename)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f"{path.stem[:24]}-", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class RegistryStore:
    """CAS + alias index + LRU over :class:`DistributionDB` artifacts."""

    def __init__(
        self,
        root: str | Path | None = None,
        lru_size: int = 8,
    ):
        self.root = Path(root) if root is not None else None
        self.lru_size = lru_size
        #: corrupt CAS entries quarantined since construction
        self.corruptions = 0
        #: optional callback(path) fired on quarantine
        self.on_corrupt: Callable[[Path], None] | None = None
        # fingerprint -> frozen deserialised DistributionDB
        self._lru: OrderedDict[str, DistributionDB] = OrderedDict()
        # The store is touched from the event-loop thread and tests'
        # worker threads; the lock covers the LRU and the in-memory
        # maps (disk operations are already atomic per file).
        self._lock = threading.Lock()
        if self.root is not None:
            for sub in ("cas", "aliases", "meta"):
                (self.root / sub).mkdir(parents=True, exist_ok=True)
        # In-memory mode state (root=None): same semantics, no files.
        self._mem_cas: dict[str, str] = {}
        self._mem_meta: dict[str, dict] = {}
        self._mem_alias: dict[str, dict] = {}

    # -- paths -------------------------------------------------------------------
    def _cas_path(self, fingerprint: str) -> Path:
        return self.root / "cas" / f"db-{fingerprint}.json"

    def _meta_path(self, fingerprint: str) -> Path:
        return self.root / "meta" / f"db-{fingerprint}.json"

    def _alias_path(self, alias: str) -> Path:
        return self.root / "aliases" / f"{alias}.json"

    # -- population --------------------------------------------------------------
    def put(
        self,
        db: DistributionDB,
        tenant: str = "public",
        source: str | None = None,
        check: Callable[[int], None] | None = None,
    ) -> dict:
        """Register *db* under its content fingerprint; returns its meta.

        Freezes *db* (post-registration ``add()`` raises -- the content
        behind a fingerprint must never change) and serialises it once.
        *check(nbytes)* runs before anything is written -- the tenant
        quota hook -- and is skipped entirely when the content is
        already stored: re-uploading existing bytes is free and
        idempotent.  Concurrent same-content uploads converge on one
        CAS entry via the atomic rename.
        """
        fingerprint = db.fingerprint()
        db.freeze()
        existing = self.meta(fingerprint)
        if existing is not None:
            with self._lock:
                self._lru_insert(fingerprint, db)
            return existing
        text = json.dumps(db.to_doc(include_samples=True))
        if check is not None:
            check(len(text))
        meta = {
            "fingerprint": fingerprint,
            "cluster": db.cluster,
            "tenant": tenant,
            "bytes": len(text),
            "results": len(db),
            "ops": db.ops(),
            "created_ns": time.time_ns(),
        }
        if source is not None:
            meta["source"] = source
        if self.root is None:
            with self._lock:
                self._mem_cas[fingerprint] = text
                self._mem_meta.setdefault(fingerprint, meta)
                self._lru_insert(fingerprint, db)
            return meta
        cas = self._cas_path(fingerprint)
        if not cas.exists():
            _atomic_write(cas, text)
        meta_path = self._meta_path(fingerprint)
        if not meta_path.exists():
            _atomic_write(meta_path, json.dumps(meta))
        with self._lock:
            self._lru_insert(fingerprint, db)
        return meta

    def _lru_insert(self, fingerprint: str, db: DistributionDB) -> None:
        """Insert under the lock; evict beyond ``lru_size``."""
        if self.lru_size <= 0:
            return
        self._lru[fingerprint] = db
        self._lru.move_to_end(fingerprint)
        while len(self._lru) > self.lru_size:
            self._lru.popitem(last=False)

    # -- resolution --------------------------------------------------------------
    def resolve(self, ref: str) -> str:
        """Resolve an alias or full fingerprint to a stored fingerprint.

        A fingerprint ref is checked against the CAS (so a deleted
        database 404s even if an LRU copy lingers); an alias ref reads
        its index file fresh each call -- that single read is what
        makes cross-process hot-swap coherent.
        """
        if not isinstance(ref, str) or not ref:
            raise RegistryError("registry ref must be a non-empty string")
        if FINGERPRINT_RE.match(ref):
            if self._cas_exists(ref):
                return ref
            raise UnknownRef(f"no database with fingerprint {ref[:16]}...")
        if not ALIAS_RE.match(ref):
            raise RegistryError(f"malformed registry ref {ref!r}")
        entry = self._read_alias(ref)
        if entry is None:
            raise UnknownRef(f"no database or alias named {ref!r}")
        fingerprint = entry.get("fingerprint", "")
        if not self._cas_exists(fingerprint):
            raise UnknownRef(
                f"alias {ref!r} points at a deleted database "
                f"({fingerprint[:16]}...)"
            )
        return fingerprint

    def _cas_exists(self, fingerprint: str) -> bool:
        if self.root is None:
            with self._lock:
                return fingerprint in self._mem_cas
        return self._cas_path(fingerprint).exists()

    def _read_alias(self, alias: str) -> dict | None:
        if self.root is None:
            with self._lock:
                entry = self._mem_alias.get(alias)
                return dict(entry) if entry else None
        path = self._alias_path(alias)
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        return doc if isinstance(doc, dict) else None

    def get(self, ref: str) -> DistributionDB:
        """Load (alias or fingerprint) -> frozen :class:`DistributionDB`.

        LRU hits are free; misses read the CAS entry, verify its
        content hash, and freeze the result.  A corrupt (or tampered)
        entry is quarantined to ``*.corrupt`` and reported as a plain
        miss, so re-uploading the same content repairs the registry.
        """
        fingerprint = self.resolve(ref)
        with self._lock:
            db = self._lru.get(fingerprint)
            if db is not None:
                self._lru.move_to_end(fingerprint)
                return db
        if self.root is None:
            with self._lock:
                text = self._mem_cas.get(fingerprint)
            if text is None:
                raise UnknownRef(
                    f"no database with fingerprint {fingerprint[:16]}..."
                )
        else:
            try:
                text = self._cas_path(fingerprint).read_text()
            except OSError:
                raise UnknownRef(
                    f"no database with fingerprint {fingerprint[:16]}..."
                ) from None
        try:
            db = DistributionDB.from_doc(json.loads(text))
            if db.fingerprint() != fingerprint:
                raise ValueError("content does not match its fingerprint")
        except (KeyError, TypeError, ValueError):
            self._quarantine(fingerprint)
            raise UnknownRef(
                f"database {fingerprint[:16]}... was corrupt and has been "
                f"quarantined; upload it again"
            ) from None
        db.freeze()
        with self._lock:
            self._lru_insert(fingerprint, db)
        return db

    def _quarantine(self, fingerprint: str) -> None:
        """Move a poisoned CAS entry (and its meta) out of the lookup
        path, mirroring ``PredictionCache``: later reads plain-miss and
        a re-upload of the same content restores service."""
        self.corruptions += 1
        if self.root is None:
            with self._lock:
                self._mem_cas.pop(fingerprint, None)
                self._mem_meta.pop(fingerprint, None)
            return
        path = self._cas_path(fingerprint)
        try:
            path.replace(path.with_suffix(".corrupt"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        try:
            self._meta_path(fingerprint).unlink()
        except OSError:
            pass
        if self.on_corrupt is not None:
            self.on_corrupt(path)

    # -- aliases -----------------------------------------------------------------
    def set_alias(self, alias: str, ref: str, tenant: str = "public") -> str:
        """Point *alias* at *ref* (alias or fingerprint); returns the
        resolved fingerprint.  One atomic file replacement -- in-flight
        requests that already resolved the old fingerprint keep serving
        it; new resolutions see the new one.  This *is* hot-swap."""
        if not isinstance(alias, str) or not ALIAS_RE.match(alias):
            raise RegistryError(
                f"malformed alias {alias!r} (want {ALIAS_RE.pattern})"
            )
        if FINGERPRINT_RE.match(alias):
            raise RegistryError("an alias cannot look like a fingerprint")
        fingerprint = self.resolve(ref)
        entry = {
            "alias": alias,
            "fingerprint": fingerprint,
            "tenant": tenant,
            "updated_ns": time.time_ns(),
        }
        if self.root is None:
            with self._lock:
                self._mem_alias[alias] = entry
        else:
            _atomic_write(self._alias_path(alias), json.dumps(entry))
        return fingerprint

    def aliases(self) -> dict[str, dict]:
        """alias -> ``{"fingerprint", "tenant", "updated_ns"}``."""
        if self.root is None:
            with self._lock:
                return {a: dict(e) for a, e in sorted(self._mem_alias.items())}
        out: dict[str, dict] = {}
        for path in sorted((self.root / "aliases").glob("*.json")):
            try:
                doc = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if isinstance(doc, dict) and "fingerprint" in doc:
                out[path.stem] = doc
        return out

    # -- removal -----------------------------------------------------------------
    def delete(self, ref: str, tenant: str | None = None) -> str:
        """Remove a database (and every alias pointing at it).

        With *tenant*, the caller must own the entry (the uploading
        tenant recorded in its meta); ``tenant=None`` is the
        administrative path.  Returns the removed fingerprint.
        """
        fingerprint = self.resolve(ref)
        meta = self.meta(fingerprint)
        owner = (meta or {}).get("tenant")
        if tenant is not None and owner is not None and owner != tenant:
            raise NotOwner(
                f"database {fingerprint[:16]}... belongs to tenant "
                f"{owner!r}, not {tenant!r}"
            )
        doomed = [
            alias
            for alias, entry in self.aliases().items()
            if entry.get("fingerprint") == fingerprint
        ]
        if self.root is None:
            with self._lock:
                self._mem_cas.pop(fingerprint, None)
                self._mem_meta.pop(fingerprint, None)
                for alias in doomed:
                    self._mem_alias.pop(alias, None)
                self._lru.pop(fingerprint, None)
            return fingerprint
        for path in (
            self._cas_path(fingerprint),
            self._meta_path(fingerprint),
            *(self._alias_path(alias) for alias in doomed),
        ):
            try:
                path.unlink()
            except OSError:
                pass
        with self._lock:
            self._lru.pop(fingerprint, None)
        return fingerprint

    # -- introspection -----------------------------------------------------------
    def meta(self, fingerprint: str) -> dict | None:
        if self.root is None:
            with self._lock:
                meta = self._mem_meta.get(fingerprint)
                return dict(meta) if meta else None
        try:
            doc = json.loads(self._meta_path(fingerprint).read_text())
        except (OSError, ValueError):
            return None
        return doc if isinstance(doc, dict) else None

    def fingerprints(self) -> list[str]:
        if self.root is None:
            with self._lock:
                return sorted(self._mem_cas)
        return sorted(
            p.stem[3:]
            for p in (self.root / "cas").glob("db-*.json")
            if FINGERPRINT_RE.match(p.stem[3:])
        )

    def entries(self) -> list[dict]:
        """One meta document per stored database, aliases attached --
        the ``GET /distributions`` fleet listing."""
        by_fingerprint: dict[str, list[str]] = {}
        for alias, entry in self.aliases().items():
            by_fingerprint.setdefault(entry.get("fingerprint", ""), []).append(
                alias
            )
        out = []
        for fingerprint in self.fingerprints():
            meta = self.meta(fingerprint) or {"fingerprint": fingerprint}
            meta = dict(meta)
            meta["aliases"] = sorted(by_fingerprint.get(fingerprint, []))
            out.append(meta)
        return out

    def tenant_usage(self, tenant: str) -> tuple[int, int]:
        """(database count, total bytes) owned by *tenant*."""
        count = total = 0
        for fingerprint in self.fingerprints():
            meta = self.meta(fingerprint)
            if meta is not None and meta.get("tenant") == tenant:
                count += 1
                total += int(meta.get("bytes", 0))
        return count, total

    def stats(self) -> dict:
        """Registry state for ``/healthz`` and the metrics gauges."""
        total = 0
        fingerprints = self.fingerprints()
        for fingerprint in fingerprints:
            meta = self.meta(fingerprint)
            if meta is not None:
                total += int(meta.get("bytes", 0))
        index_mtime: float | None = None
        if self.root is not None:
            mtimes = [
                p.stat().st_mtime
                for p in (self.root / "aliases").glob("*.json")
            ]
            index_mtime = max(mtimes) if mtimes else None
        else:
            with self._lock:
                stamps = [
                    e.get("updated_ns", 0) for e in self._mem_alias.values()
                ]
            index_mtime = max(stamps) / 1e9 if stamps else None
        return {
            "dbs": len(fingerprints),
            "bytes": total,
            "aliases": len(self.aliases()),
            "corruptions": self.corruptions,
            "index_mtime": index_mtime,
            "root": str(self.root) if self.root is not None else None,
        }

    def __len__(self) -> int:
        return len(self.fingerprints())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.root if self.root is not None else "memory"
        return f"<RegistryStore {where} dbs={len(self)}>"
