"""Per-tenant namespaces over the registry: quotas and request rates.

A tenant is named by the ``X-Repro-Tenant`` request header (default
``public``).  Two enforcement points:

* **upload quota** -- database count and total bytes per tenant,
  checked *before* the CAS write so a rejected upload leaves no
  partial state (and re-uploading already-stored content is always
  free: content-addressing makes it a no-op);
* **request rate** -- a token bucket per tenant, plugged into the
  service's :class:`~repro.service.jobs.JobQueue` admission path so a
  throttled tenant gets the same 429 + ``Retry-After`` contract as a
  full queue, before any engine work is done.

Both failures carry a ``retry_after`` hint, matching the admission
layer's existing backpressure idiom.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from .store import ALIAS_RE, RegistryError, RegistryStore

__all__ = [
    "QuotaExceeded",
    "TenantManager",
    "TenantQuota",
    "TenantThrottled",
    "clean_tenant",
]

DEFAULT_TENANT = "public"


class QuotaExceeded(RuntimeError):
    """Tenant storage quota exhausted (HTTP 429 + Retry-After)."""

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class TenantThrottled(RuntimeError):
    """Tenant request rate exhausted (HTTP 429 + Retry-After)."""

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


def clean_tenant(value: str | None) -> str:
    """Validate an ``X-Repro-Tenant`` header value; ``None``/empty means
    the shared :data:`DEFAULT_TENANT` namespace."""
    if value is None:
        return DEFAULT_TENANT
    value = value.strip()
    if not value:
        return DEFAULT_TENANT
    if not ALIAS_RE.match(value):
        raise RegistryError(
            f"malformed tenant name {value!r} (want {ALIAS_RE.pattern})"
        )
    return value


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant limits.  ``rate=0`` disables request throttling."""

    max_dbs: int = 16
    max_bytes: int = 256 * 1024 * 1024
    #: sustained requests/second replenished into the bucket
    rate: float = 0.0
    #: bucket capacity (burst head-room)
    burst: int = 8
    #: Retry-After floor for quota rejections
    retry_after: float = 1.0


class _Bucket:
    __slots__ = ("tokens", "stamp")

    def __init__(self, tokens: float, stamp: float):
        self.tokens = tokens
        self.stamp = stamp


class TenantManager:
    """Quota + rate accounting for one registry store."""

    def __init__(
        self,
        store: RegistryStore,
        quota: TenantQuota | None = None,
        clock=time.monotonic,
    ):
        self.store = store
        self.quota = quota or TenantQuota()
        self._clock = clock
        self._buckets: dict[str, _Bucket] = {}
        self._lock = threading.Lock()
        #: throttle rejections since construction (metrics hook)
        self.throttled = 0

    # -- request rate ------------------------------------------------------------
    def admit(self, tenant: str | None) -> None:
        """Take one token from *tenant*'s bucket or raise
        :class:`TenantThrottled`.  No-op when throttling is disabled
        (``rate <= 0``)."""
        quota = self.quota
        if quota.rate <= 0:
            return
        name = tenant or DEFAULT_TENANT
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(name)
            if bucket is None:
                bucket = _Bucket(float(quota.burst), now)
                self._buckets[name] = bucket
            else:
                bucket.tokens = min(
                    float(quota.burst),
                    bucket.tokens + (now - bucket.stamp) * quota.rate,
                )
                bucket.stamp = now
            if bucket.tokens >= 1.0:
                bucket.tokens -= 1.0
                return
            wait = (1.0 - bucket.tokens) / quota.rate
            self.throttled += 1
        raise TenantThrottled(
            f"tenant {name!r} exceeded its request rate", retry_after=wait
        )

    # -- storage quota -----------------------------------------------------------
    def check_upload(self, tenant: str, nbytes: int) -> None:
        """Admit or refuse an upload of *nbytes* new content by
        *tenant*; called by :meth:`RegistryStore.put` before writing."""
        quota = self.quota
        count, used = self.store.tenant_usage(tenant)
        if count + 1 > quota.max_dbs:
            raise QuotaExceeded(
                f"tenant {tenant!r} already stores {count} databases "
                f"(limit {quota.max_dbs})",
                retry_after=quota.retry_after,
            )
        if used + nbytes > quota.max_bytes:
            raise QuotaExceeded(
                f"tenant {tenant!r} would store {used + nbytes} bytes "
                f"(limit {quota.max_bytes})",
                retry_after=quota.retry_after,
            )

    def usage(self, tenant: str) -> dict:
        count, used = self.store.tenant_usage(tenant)
        return {
            "tenant": tenant,
            "dbs": count,
            "bytes": used,
            "max_dbs": self.quota.max_dbs,
            "max_bytes": self.quota.max_bytes,
        }
