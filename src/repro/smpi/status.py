"""Statuses, wildcards and MPI error types."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Status",
    "MpiError",
    "RankError",
    "TagError",
    "CommAbort",
]

#: Wildcard accepted by receive calls to match a message from any sender.
ANY_SOURCE = -1
#: Wildcard accepted by receive calls to match a message with any tag.
ANY_TAG = -1


class MpiError(RuntimeError):
    """Base class for errors raised by the simulated MPI runtime."""


class RankError(MpiError):
    """A rank argument was outside the communicator."""


class TagError(MpiError):
    """A tag argument was negative (and not the ANY_TAG wildcard)."""


class CommAbort(MpiError):
    """The run was aborted (e.g. transport gave up after max retransmits)."""


@dataclass(frozen=True)
class Status:
    """Completion information for a receive, like ``MPI_Status``.

    *transit_time* and *attempts* are simulator extensions -- MPIBench uses
    them for ground-truth cross-checks but real benchmark code must not
    (a physical cluster would not provide them).
    """

    source: int
    tag: int
    size: int  #: message payload size in bytes
    transit_time: float = 0.0
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("status size must be non-negative")
