"""Sub-communicators: ``MPI_Comm_split`` for the simulated runtime.

A :class:`SubComm` presents the full :class:`~repro.smpi.comm.Comm` API
over a subset of the world's ranks, renumbered 0..n-1.  Internally every
operation is translated to world ranks and executed on the world
communicator with the tag shifted into a communicator-private namespace,
so messages (including collective traffic) in different communicators can
never match each other -- the isolation property ``MPI_Comm_split``
guarantees.

Usage (inside a rank program)::

    row = yield from comm.split(color=comm.rank // 4)
    total = yield from row.allreduce(8, payload=x, op=operator.add)

Splitting is itself a collective: every world rank must call it with some
color (``None`` to opt out, like ``MPI_UNDEFINED``).
"""

from __future__ import annotations

from typing import Any

from .comm import MAX_USER_TAG, Comm
from .status import ANY_SOURCE, ANY_TAG, RankError, Status, TagError

__all__ = ["SubComm", "TAG_STRIDE", "MAX_SUBCOMM_TAG"]

#: world-tag stride per communicator; sub-communicator user tags must stay
#: below this so shifted tags never collide across communicators.
TAG_STRIDE = 1 << 24
MAX_SUBCOMM_TAG = MAX_USER_TAG  # same user-facing limit as the world comm


class SubComm:
    """A communicator over a subset of world ranks.

    Exposes the same generator API as :class:`Comm`; construct via
    ``yield from comm.split(color, key)``.
    """

    def __init__(self, world: Comm, members: list[int], comm_id: int):
        if world.rank not in members:
            raise RankError("this rank is not a member of the sub-communicator")
        self._world = world
        self._members = list(members)
        self._comm_id = comm_id
        self.rank = self._members.index(world.rank)
        self._coll_seq = 0

    # -- introspection ---------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._members)

    @property
    def world_ranks(self) -> list[int]:
        """The world rank of each member, in sub-rank order."""
        return list(self._members)

    @property
    def node(self) -> int:
        return self._world.node

    @property
    def sim(self):
        return self._world.sim

    @property
    def stats(self):
        """Counters are shared with the world communicator (per process)."""
        return self._world.stats

    def clock(self) -> float:
        return self._world.clock()

    def true_time(self) -> float:
        return self._world.true_time()

    def compute(self, seconds: float):
        return self._world.compute(seconds)

    # -- rank/tag translation -----------------------------------------------------
    def _to_world(self, rank: int, what: str) -> int:
        if not 0 <= rank < self.size:
            raise RankError(f"{what} {rank} outside sub-communicator of size {self.size}")
        return self._members[rank]

    def _from_world(self, world_rank: int) -> int:
        try:
            return self._members.index(world_rank)
        except ValueError:
            raise RankError(
                f"world rank {world_rank} is not in this sub-communicator"
            ) from None

    def _shift_tag(self, tag: int, allow_any: bool) -> int:
        if tag == ANY_TAG:
            if allow_any:
                # Wildcards cannot be namespaced with a simple shift; the
                # communicator still isolates because sources are exact
                # world ranks and user code sees only this comm's members.
                raise TagError(
                    "SubComm receives require an explicit tag (ANY_TAG "
                    "cannot be isolated between communicators)"
                )
            raise TagError("invalid tag")
        if not 0 <= tag < MAX_SUBCOMM_TAG:
            raise TagError(f"sub-communicator tags must be in [0, {MAX_SUBCOMM_TAG})")
        return TAG_STRIDE * (self._comm_id + 1) + tag

    # -- point-to-point --------------------------------------------------------------
    def isend(self, size: int, dest: int, tag: int = 0, payload: Any = None):
        world_dest = self._to_world(dest, "destination")
        req = yield from self._world.isend(
            size, world_dest, self._shift_tag(tag, allow_any=False), payload
        )
        return req

    def send(self, size: int, dest: int, tag: int = 0, payload: Any = None):
        req = yield from self.isend(size, dest, tag, payload)
        status = yield from self.wait(req)
        return status

    def irecv(self, source: int = ANY_SOURCE, tag: int = 0):
        world_source = (
            ANY_SOURCE if source == ANY_SOURCE else self._to_world(source, "source")
        )
        shifted = self._shift_tag(tag, allow_any=True)
        req = yield from self._world.irecv(world_source, shifted)
        return req

    def recv(self, source: int = ANY_SOURCE, tag: int = 0):
        req = yield from self.irecv(source, tag)
        result = yield from self.wait(req)
        return result

    def sendrecv(self, size, dest, source, sendtag=0, recvtag=0, payload=None):
        rreq = yield from self.irecv(source, recvtag)
        sreq = yield from self.isend(size, dest, sendtag, payload)
        payload_status = yield from self.wait(rreq)
        yield from self.wait(sreq)
        return payload_status

    def wait(self, req):
        result = yield from self._world.wait(req)
        if result is None:
            return None
        payload, status = result
        # Present the status in this communicator's rank/tag coordinates.
        translated = Status(
            source=self._from_world(status.source),
            tag=status.tag - TAG_STRIDE * (self._comm_id + 1),
            size=status.size,
            transit_time=status.transit_time,
            attempts=status.attempts,
        )
        return payload, translated

    def waitall(self, reqs):
        out = []
        for req in reqs:
            res = yield from self.wait(req)
            out.append(res)
        return out

    def test(self, req) -> bool:
        return self._world.test(req)

    # -- collectives -----------------------------------------------------------------
    def _next_coll_tag(self) -> int:
        # Upper half of the (unshifted) tag range is reserved for
        # collectives; point-to-point shifting namespaces it per comm.
        tag = MAX_SUBCOMM_TAG // 2 + (self._coll_seq % (MAX_SUBCOMM_TAG // 2))
        self._coll_seq += 1
        return tag

    def barrier(self):
        from . import collectives

        return collectives.barrier(self)

    def bcast(self, size: int, root: int = 0, payload: Any = None):
        from . import collectives

        return collectives.bcast(self, size, root, payload)

    def reduce(self, size: int, root: int = 0, payload: Any = None, op=None):
        from . import collectives

        return collectives.reduce(self, size, root, payload, op)

    def allreduce(self, size: int, payload: Any = None, op=None):
        from . import collectives

        return collectives.allreduce(self, size, payload, op)

    def gather(self, size: int, root: int = 0, payload: Any = None):
        from . import collectives

        return collectives.gather(self, size, root, payload)

    def scatter(self, size: int, root: int = 0, payloads: list | None = None):
        from . import collectives

        return collectives.scatter(self, size, root, payloads)

    def allgather(self, size: int, payload: Any = None):
        from . import collectives

        return collectives.allgather(self, size, payload)

    def alltoall(self, size: int, payloads: list | None = None):
        from . import collectives

        return collectives.alltoall(self, size, payloads)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SubComm id={self._comm_id} rank={self.rank}/{self.size} "
            f"world={self._members}>"
        )
