"""Collective operations, built from point-to-point messages.

The algorithms are the classic MPICH-era ones, chosen because their
message *counts and shapes* determine collective timing on the simulated
fabric exactly as they did on Perseus:

* broadcast / reduce: binomial tree (ceil(log2 P) rounds),
* barrier: dissemination algorithm (ceil(log2 P) rounds of 0-byte pairs),
* allreduce: reduce-to-0 followed by broadcast,
* gather / scatter: linear to/from the root,
* allgather: ring (P-1 steps),
* alltoall: P-1 shifted pairwise exchanges.

All functions are generators taking the calling rank's
:class:`~repro.smpi.comm.Comm` and must be driven with ``yield from``; all
ranks must call the same collectives in the same order (as MPI requires) --
tags are drawn from a per-rank sequence counter that stays aligned across
ranks precisely because of that requirement.

Payload semantics: these collectives move *byte counts* for timing, but
also carry optional Python payloads so application examples (e.g. the task
farm) can move real values through them.
"""

from __future__ import annotations

from typing import Any, Callable

from .status import RankError

__all__ = [
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
    "allgather",
    "alltoall",
]


def _check_root(comm, root: int) -> None:
    if not 0 <= root < comm.size:
        raise RankError(f"root {root} outside communicator of size {comm.size}")


def barrier(comm):
    """Dissemination barrier: in round k every rank exchanges a 0-byte
    message with the ranks at distance 2**k; after ceil(log2 P) rounds
    everyone transitively heard from everyone."""
    tag = comm._next_coll_tag()
    size = comm.size
    if size == 1:
        return None
    mask = 1
    while mask < size:
        dest = (comm.rank + mask) % size
        source = (comm.rank - mask) % size
        yield from comm.sendrecv(0, dest=dest, source=source, sendtag=tag, recvtag=tag)
        mask <<= 1
    return None


def bcast(comm, size: int, root: int = 0, payload: Any = None):
    """Binomial-tree broadcast of *size* bytes from *root*.

    Returns the payload (at every rank).
    """
    _check_root(comm, root)
    tag = comm._next_coll_tag()
    P = comm.size
    if P == 1:
        return payload
    relative = (comm.rank - root) % P

    if relative != 0:
        # Receive from the parent: the rank that differs in our lowest set bit.
        lsb = relative & (-relative)
        parent = (comm.rank - lsb) % P
        payload, _status = yield from comm.recv(source=parent, tag=tag)
        mask = lsb >> 1
    else:
        mask = 1
        while mask < P:
            mask <<= 1
        mask >>= 1

    while mask >= 1:
        if relative + mask < P:
            child = (comm.rank + mask) % P
            yield from comm.send(size, dest=child, tag=tag, payload=payload)
        mask >>= 1
    return payload


def reduce(
    comm,
    size: int,
    root: int = 0,
    payload: Any = None,
    op: Callable[[Any, Any], Any] | None = None,
):
    """Binomial-tree reduction of *size*-byte contributions to *root*.

    *op* combines two payloads; with the default ``None`` the payloads are
    ignored (timing-only reduction).  Returns the reduced payload at the
    root and ``None`` elsewhere.
    """
    _check_root(comm, root)
    tag = comm._next_coll_tag()
    P = comm.size
    if P == 1:
        return payload
    relative = (comm.rank - root) % P
    acc = payload

    mask = 1
    while mask < P:
        if relative & mask:
            parent = (comm.rank - mask) % P
            yield from comm.send(size, dest=parent, tag=tag, payload=acc)
            return None
        partner_rel = relative + mask
        if partner_rel < P:
            child = (comm.rank + mask) % P
            child_payload, _status = yield from comm.recv(source=child, tag=tag)
            if op is not None:
                acc = op(acc, child_payload)
        mask <<= 1
    return acc


def allreduce(
    comm,
    size: int,
    payload: Any = None,
    op: Callable[[Any, Any], Any] | None = None,
):
    """Reduce to rank 0, then broadcast the result (MPICH's small-message
    allreduce).  Returns the reduced payload at every rank."""
    reduced = yield from reduce(comm, size, root=0, payload=payload, op=op)
    result = yield from bcast(comm, size, root=0, payload=reduced)
    return result


def gather(comm, size: int, root: int = 0, payload: Any = None):
    """Linear gather of *size*-byte contributions to *root*.

    Returns the list of payloads indexed by rank at the root, ``None``
    elsewhere.
    """
    _check_root(comm, root)
    tag = comm._next_coll_tag()
    P = comm.size
    if comm.rank != root:
        yield from comm.send(size, dest=root, tag=tag, payload=payload)
        return None
    results: list[Any] = [None] * P
    results[root] = payload
    for _ in range(P - 1):
        item, status = yield from comm.recv(tag=tag)
        results[status.source] = item
    return results


def scatter(comm, size: int, root: int = 0, payloads: list | None = None):
    """Linear scatter of *size*-byte pieces from *root*.

    *payloads* (root only) is a list of per-rank values; returns this
    rank's piece.
    """
    _check_root(comm, root)
    tag = comm._next_coll_tag()
    P = comm.size
    if comm.rank == root:
        if payloads is not None and len(payloads) != P:
            raise ValueError(f"scatter needs {P} payloads, got {len(payloads)}")
        for dest in range(P):
            if dest == root:
                continue
            item = payloads[dest] if payloads is not None else None
            yield from comm.send(size, dest=dest, tag=tag, payload=item)
        return payloads[root] if payloads is not None else None
    item, _status = yield from comm.recv(source=root, tag=tag)
    return item


def allgather(comm, size: int, payload: Any = None):
    """Ring allgather: P-1 steps, each forwarding one *size*-byte block to
    the next rank.  Returns the list of payloads indexed by rank."""
    tag = comm._next_coll_tag()
    P = comm.size
    results: list[Any] = [None] * P
    results[comm.rank] = payload
    if P == 1:
        return results
    right = (comm.rank + 1) % P
    left = (comm.rank - 1) % P
    # Each step forwards the block received in the previous step.
    block_origin = comm.rank
    block = payload
    for _ in range(P - 1):
        rreq = yield from comm.irecv(source=left, tag=tag)
        yield from comm.send(size, dest=right, tag=tag, payload=(block_origin, block))
        (block_origin, block), _status = yield from comm.wait(rreq)
        results[block_origin] = block
    return results


def alltoall(comm, size: int, payloads: list | None = None):
    """Shifted pairwise alltoall: in step k each rank sends its block for
    rank (rank+k) and receives from (rank-k).  Returns the list of blocks
    received, indexed by source rank."""
    tag = comm._next_coll_tag()
    P = comm.size
    if payloads is not None and len(payloads) != P:
        raise ValueError(f"alltoall needs {P} payloads, got {len(payloads)}")
    results: list[Any] = [None] * P
    results[comm.rank] = payloads[comm.rank] if payloads is not None else None
    for step in range(1, P):
        dest = (comm.rank + step) % P
        source = (comm.rank - step) % P
        item = payloads[dest] if payloads is not None else None
        received, _status = yield from comm.sendrecv(
            size, dest=dest, source=source, sendtag=tag, recvtag=tag, payload=item
        )
        results[source] = received
    return results
