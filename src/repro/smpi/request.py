"""Nonblocking-communication request objects.

A :class:`Request` wraps the engine event that fires when the operation
completes, mirroring mpi4py's ``Request`` with ``wait``/``test``.  Because
rank programs are generators, waiting is expressed by yielding::

    req = yield from comm.isend(1024, dest=3)
    ...
    status = yield from comm.wait(req)

``comm.wait`` also charges the receive-side software overhead for receive
requests, which is why requests are completed through the Comm rather than
by yielding ``req.completion`` directly.
"""

from __future__ import annotations

import enum
from typing import Any

from ..simnet.engine import Event

__all__ = ["RequestKind", "Request"]


class RequestKind(enum.Enum):
    SEND = "send"
    RECV = "recv"


class Request:
    """Handle for an in-flight nonblocking operation."""

    __slots__ = ("kind", "completion", "_result", "_consumed", "peer", "tag", "size")

    def __init__(self, kind: RequestKind, completion: Event, peer: int, tag: int, size: int):
        self.kind = kind
        self.completion = completion
        self.peer = peer  #: dest rank for sends, source pattern for recvs
        self.tag = tag
        self.size = size
        self._result: Any = None
        self._consumed = False

    @property
    def complete(self) -> bool:
        """True once the underlying operation has finished (the MPI
        ``MPI_Test`` flag)."""
        return self.completion.triggered

    @property
    def consumed(self) -> bool:
        """True once ``comm.wait`` has been called on this request."""
        return self._consumed

    def _mark_consumed(self) -> None:
        self._consumed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "complete" if self.complete else "pending"
        return (
            f"<Request {self.kind.value} peer={self.peer} tag={self.tag} "
            f"size={self.size} {state}>"
        )
