"""Simulated MPI runtime (the stand-in for MPICH 1.2 on Perseus).

Rank programs are generators driven by the discrete-event kernel; all
communication calls are invoked with ``yield from``.  See
:mod:`repro.smpi.comm` for the point-to-point semantics (eager vs.
rendezvous) and :mod:`repro.smpi.collectives` for the tree algorithms.
"""

from .comm import CTRL_MSG_BYTES, MAX_USER_TAG, Comm, CommStats
from .datatypes import BYTE, CHAR, DOUBLE, FLOAT, INT, LONG, SHORT, Datatype, nbytes
from .matching import Envelope, EnvelopeKind, Mailbox, PostedRecv
from .request import Request, RequestKind
from .runtime import MpiDeadlock, MpiRun, RunResult, run_program
from .status import ANY_SOURCE, ANY_TAG, CommAbort, MpiError, RankError, Status, TagError
from .subcomm import SubComm

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BYTE",
    "CHAR",
    "CTRL_MSG_BYTES",
    "Comm",
    "CommAbort",
    "CommStats",
    "DOUBLE",
    "Datatype",
    "Envelope",
    "EnvelopeKind",
    "FLOAT",
    "INT",
    "LONG",
    "MAX_USER_TAG",
    "Mailbox",
    "MpiDeadlock",
    "MpiError",
    "MpiRun",
    "PostedRecv",
    "RankError",
    "Request",
    "RequestKind",
    "RunResult",
    "SHORT",
    "Status",
    "SubComm",
    "TagError",
    "nbytes",
    "run_program",
]
