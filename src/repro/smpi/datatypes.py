"""MPI datatypes (sizing only).

The simulator moves *byte counts*, not real buffers, so a datatype here is
just a name and an extent.  The set matches the C types the paper's codes
use (the Jacobi example sends ``xsize * sizeof(float)`` bytes).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Datatype",
    "BYTE",
    "CHAR",
    "SHORT",
    "INT",
    "LONG",
    "FLOAT",
    "DOUBLE",
    "nbytes",
]


@dataclass(frozen=True)
class Datatype:
    """An MPI datatype: a name and its extent in bytes."""

    name: str
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"datatype {self.name!r} must have positive size")

    def extent(self, count: int) -> int:
        """Bytes occupied by *count* elements of this type."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return count * self.size


BYTE = Datatype("MPI_BYTE", 1)
CHAR = Datatype("MPI_CHAR", 1)
SHORT = Datatype("MPI_SHORT", 2)
INT = Datatype("MPI_INT", 4)
LONG = Datatype("MPI_LONG", 8)
FLOAT = Datatype("MPI_FLOAT", 4)
DOUBLE = Datatype("MPI_DOUBLE", 8)


def nbytes(count: int, datatype: Datatype = BYTE) -> int:
    """Message size in bytes for *count* elements of *datatype*."""
    return datatype.extent(count)
