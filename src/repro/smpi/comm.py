"""The simulated MPI communicator: point-to-point operations.

Rank programs are Python generators; every communication call on
:class:`Comm` is itself a generator and must be invoked with ``yield
from``::

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1024, dest=1, tag=7)
        else:
            payload, status = yield from comm.recv(source=0, tag=7)

Protocol semantics mirror MPICH 1.2 over TCP, because those produced the
paper's measurements:

* **eager** (size <= ``spec.eager_threshold``, 16 KB on Perseus): the send
  returns after the sender-side software overhead; the message travels
  asynchronously and is buffered at the receiver if no receive is posted.
* **rendezvous** (larger): the sender issues a ready-to-send (RTS) control
  message, waits for clear-to-send (CTS) -- which the receiver only issues
  once a matching receive is posted -- then transfers the data.  The send
  completes when the data transfer does.  The protocol switch is what
  causes the knee at 16 KB in the paper's Figure 2.
* messages between a given rank pair are delivered in order (one TCP
  connection per pair).

Software costs (per-message overhead plus per-byte copy, from
``spec.host``) are charged to the calling rank's virtual CPU.
"""

from __future__ import annotations

from typing import Any

from ..simnet.engine import Event
from .matching import Envelope, EnvelopeKind, Mailbox, PostedRecv
from .request import Request, RequestKind
from .status import ANY_SOURCE, ANY_TAG, RankError, Status, TagError

__all__ = ["Comm", "CommStats", "CTRL_MSG_BYTES", "MAX_USER_TAG"]

#: wire size of RTS / CTS rendezvous control messages
CTRL_MSG_BYTES = 64
#: user tags must stay below this; the collective algorithms use the tag
#: space above it.
MAX_USER_TAG = 1 << 20


class CommStats:
    """Per-rank communication counters (the PMPI profiling view).

    *send_time* counts the CPU time spent inside send calls; *recv_wait*
    the time between calling wait on a receive and its completion
    (including the receive-side copy).  Together with the program's own
    compute time they decompose a rank's wall clock the same way PEVPM's
    loss attribution decomposes its virtual time -- so measurements and
    model attribution are directly comparable.
    """

    __slots__ = (
        "sends", "recvs", "bytes_sent", "bytes_received",
        "send_time", "recv_wait", "compute_time",
    )

    def __init__(self):
        self.sends = 0
        self.recvs = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.send_time = 0.0
        self.recv_wait = 0.0
        self.compute_time = 0.0

    def as_dict(self) -> dict:
        return {
            "sends": self.sends,
            "recvs": self.recvs,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "send_time": self.send_time,
            "recv_wait": self.recv_wait,
            "compute_time": self.compute_time,
        }

    def comm_time(self) -> float:
        """Total time attributable to communication."""
        return self.send_time + self.recv_wait


class Comm:
    """Per-rank communicator handle (the simulated ``MPI_COMM_WORLD``).

    Created by :class:`repro.smpi.runtime.MpiRun`; one instance per rank.
    """

    def __init__(self, runtime, rank: int):
        self._rt = runtime
        self.rank = rank
        self._coll_seq = 0  # per-rank collective sequence number
        #: PMPI-style per-rank communication statistics, updated by every
        #: operation; see :class:`CommStats`.
        self.stats = CommStats()
        self._split_seq = 0  # collective-order counter for comm.split

    # -- introspection ---------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of ranks in the job (``MPI_Comm_size``)."""
        return self._rt.nprocs

    @property
    def node(self) -> int:
        """Cluster node this rank runs on."""
        return self._rt.node_of(self.rank)

    @property
    def sim(self):
        """The underlying simulator (for timeouts etc.)."""
        return self._rt.sim

    # -- clocks ------------------------------------------------------------------
    def clock(self) -> float:
        """This rank's *local* clock reading -- skewed, like ``MPI_Wtime``
        on a real node.  Benchmark code must synchronise (see
        :mod:`repro.mpibench.clocksync`) before comparing readings across
        ranks."""
        return self._rt.clocks.local_time(self.node, self._rt.sim.now)

    def true_time(self) -> float:
        """Simulator ground-truth time.  Only for validation/tests; a real
        cluster has no such clock."""
        return self._rt.sim.now

    # -- computation ---------------------------------------------------------------
    def compute(self, seconds: float):
        """Occupy this rank's CPU for *seconds* of simulated work."""
        if seconds < 0:
            raise ValueError("compute time must be non-negative")
        if seconds > 0:
            self.stats.compute_time += seconds
            yield self._rt.sim.timeout(seconds)
        return None

    # -- validation helpers -----------------------------------------------------------
    def _check_rank(self, rank: int, what: str) -> None:
        if not 0 <= rank < self.size:
            raise RankError(f"{what} {rank} outside communicator of size {self.size}")

    def _check_tag(self, tag: int, allow_any: bool) -> None:
        if tag == ANY_TAG and allow_any:
            return
        if tag < 0:
            raise TagError(f"invalid tag {tag}")

    # -- point-to-point: sends ------------------------------------------------------
    def isend(self, size: int, dest: int, tag: int = 0, payload: Any = None):
        """Nonblocking send (``MPI_Isend``).  Generator; returns a
        :class:`~repro.smpi.request.Request`.

        The sender-side software overhead is charged inline (the calling
        rank is busy for it); the network transfer proceeds concurrently.
        """
        self._check_rank(dest, "destination")
        self._check_tag(tag, allow_any=False)
        if size < 0:
            raise ValueError("message size must be non-negative")
        rt = self._rt
        host = rt.spec.host
        overhead = host.send_overhead + size * host.byte_copy_cost
        self.stats.sends += 1
        self.stats.bytes_sent += size
        self.stats.send_time += overhead
        if overhead > 0:
            yield rt.sim.timeout(overhead)

        if size <= rt.spec.eager_threshold:
            completion = rt.sim.event(name=f"isend-eager:{self.rank}->{dest}")
            completion.succeed(None)  # eager send is locally complete
            rt.spawn_system(
                self._eager_transfer(dest, tag, size, payload),
                name=f"eager:{self.rank}->{dest}:t{tag}",
            )
        else:
            completion = rt.sim.event(name=f"isend-rndv:{self.rank}->{dest}")
            rt.spawn_system(
                self._rendezvous_send(dest, tag, size, payload, completion),
                name=f"rndv:{self.rank}->{dest}:t{tag}",
            )
        return Request(RequestKind.SEND, completion, peer=dest, tag=tag, size=size)

    def send(self, size: int, dest: int, tag: int = 0, payload: Any = None):
        """Blocking send (``MPI_Send``) = isend + wait."""
        req = yield from self.isend(size, dest, tag, payload)
        status = yield from self.wait(req)
        return status

    def issend(self, size: int, dest: int, tag: int = 0, payload: Any = None):
        """Nonblocking *synchronous* send (``MPI_Issend``): the request
        completes only once the matching receive is posted, regardless of
        message size -- i.e. the rendezvous protocol is forced.  Useful to
        expose unsafe send/recv orderings that eager buffering hides."""
        self._check_rank(dest, "destination")
        self._check_tag(tag, allow_any=False)
        if size < 0:
            raise ValueError("message size must be non-negative")
        rt = self._rt
        host = rt.spec.host
        overhead = host.send_overhead + size * host.byte_copy_cost
        self.stats.sends += 1
        self.stats.bytes_sent += size
        self.stats.send_time += overhead
        if overhead > 0:
            yield rt.sim.timeout(overhead)
        completion = rt.sim.event(name=f"issend:{self.rank}->{dest}")
        rt.spawn_system(
            self._rendezvous_send(dest, tag, size, payload, completion),
            name=f"ssend:{self.rank}->{dest}:t{tag}",
        )
        return Request(RequestKind.SEND, completion, peer=dest, tag=tag, size=size)

    def ssend(self, size: int, dest: int, tag: int = 0, payload: Any = None):
        """Blocking synchronous send (``MPI_Ssend``) = issend + wait."""
        req = yield from self.issend(size, dest, tag, payload)
        status = yield from self.wait(req)
        return status

    def _eager_transfer(self, dest: int, tag: int, size: int, payload: Any):
        """System process: move an eager message and deliver it."""
        rt = self._rt
        seq = rt.pair_seq(self.rank, dest)
        delivery = yield rt.network.send(self.node, rt.node_of(dest), size)
        yield from rt.pair_fifo(self.rank, dest, seq)
        env = Envelope(
            kind=EnvelopeKind.EAGER,
            source=self.rank,
            tag=tag,
            size=size,
            payload=payload,
            arrival_time=rt.sim.now,
            transit_time=delivery.transit_time,
            attempts=delivery.attempts,
        )
        rt.deliver(dest, env)

    def _rendezvous_send(
        self, dest: int, tag: int, size: int, payload: Any, completion: Event
    ):
        """System process: RTS -> (receiver CTS) -> data -> completion."""
        rt = self._rt
        src_node, dst_node = self.node, rt.node_of(dest)

        # Ready-to-send control message.
        seq = rt.pair_seq(self.rank, dest)
        yield rt.network.send(src_node, dst_node, CTRL_MSG_BYTES)
        yield from rt.pair_fifo(self.rank, dest, seq)

        def on_match(posted: PostedRecv) -> None:
            rt.spawn_system(
                self._rendezvous_finish(posted, dest, tag, size, payload, completion),
                name=f"rndv-fin:{self.rank}->{dest}",
            )

        env = Envelope(
            kind=EnvelopeKind.RTS,
            source=self.rank,
            tag=tag,
            size=size,
            payload=payload,
            arrival_time=rt.sim.now,
            on_match=on_match,
        )
        rt.deliver(dest, env)

    def _rendezvous_finish(
        self,
        posted: PostedRecv,
        dest: int,
        tag: int,
        size: int,
        payload: Any,
        completion: Event,
    ):
        """System process started when the RTS matches a posted receive:
        CTS back to the sender, then the data transfer."""
        rt = self._rt
        src_node, dst_node = self.node, rt.node_of(dest)

        # Clear-to-send travels receiver -> sender.
        cts_seq = rt.pair_seq(dest, self.rank)
        yield rt.network.send(dst_node, src_node, CTRL_MSG_BYTES)
        yield from rt.pair_fifo(dest, self.rank, cts_seq)

        # Data transfer sender -> receiver.
        data_seq = rt.pair_seq(self.rank, dest)
        delivery = yield rt.network.send(src_node, dst_node, size)
        yield from rt.pair_fifo(self.rank, dest, data_seq)

        env = Envelope(
            kind=EnvelopeKind.EAGER,  # by now it is just data
            source=self.rank,
            tag=tag,
            size=size,
            payload=payload,
            arrival_time=rt.sim.now,
            transit_time=delivery.transit_time,
            attempts=delivery.attempts,
        )
        completion.succeed(delivery)
        posted.event.succeed(env)

    # -- point-to-point: receives -----------------------------------------------------
    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Nonblocking receive (``MPI_Irecv``).  Generator; returns a
        :class:`~repro.smpi.request.Request`."""
        if source != ANY_SOURCE:
            self._check_rank(source, "source")
        self._check_tag(tag, allow_any=True)
        rt = self._rt
        event = rt.sim.event(name=f"recv:{self.rank}<-{source}:t{tag}")
        posted = PostedRecv(source=source, tag=tag, event=event)
        env = rt.mailbox(self.rank).post(posted)
        if env is not None:
            # An unexpected message was already waiting.
            if env.kind is EnvelopeKind.RTS:
                env.on_match(posted)
            else:
                event.succeed(env)
        return Request(RequestKind.RECV, event, peer=source, tag=tag, size=-1)
        yield  # pragma: no cover -- keeps the comm API uniformly generator-based

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive (``MPI_Recv``) = irecv + wait.

        Returns ``(payload, Status)``.
        """
        req = yield from self.irecv(source, tag)
        result = yield from self.wait(req)
        return result

    def sendrecv(
        self,
        size: int,
        dest: int,
        source: int,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
        payload: Any = None,
    ):
        """Combined exchange (``MPI_Sendrecv``): both directions proceed
        concurrently, avoiding the deadlock of two blocking sends.

        Returns ``(recv_payload, Status)``.
        """
        rreq = yield from self.irecv(source, recvtag)
        sreq = yield from self.isend(size, dest, sendtag, payload)
        result = yield from self.wait(rreq)
        yield from self.wait(sreq)
        return result

    # -- completion -----------------------------------------------------------------
    def wait(self, req: Request):
        """Complete a request (``MPI_Wait``).

        For send requests returns ``None``; for receive requests charges
        the receive-side software overhead and returns ``(payload,
        Status)``.
        """
        if req.consumed:
            raise ValueError("request already waited on")
        t0 = self._rt.sim.now
        value = yield req.completion
        req._mark_consumed()
        if req.kind is RequestKind.SEND:
            self.stats.send_time += self._rt.sim.now - t0
            return None
        env: Envelope = value
        rt = self._rt
        host = rt.spec.host
        overhead = host.recv_overhead + env.size * host.byte_copy_cost
        self.stats.recvs += 1
        self.stats.bytes_received += env.size
        if overhead > 0:
            yield rt.sim.timeout(overhead)
        self.stats.recv_wait += rt.sim.now - t0
        status = Status(
            source=env.source,
            tag=env.tag,
            size=env.size,
            transit_time=env.transit_time,
            attempts=env.attempts,
        )
        return (env.payload, status)

    def waitall(self, reqs: list[Request]):
        """Complete several requests; returns their results in order."""
        results = []
        for req in reqs:
            res = yield from self.wait(req)
            results.append(res)
        return results

    def test(self, req: Request) -> bool:
        """Nonblocking completion check (``MPI_Test`` flag).  Does not
        consume the request; call :meth:`wait` to retrieve the result."""
        return req.complete

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Nonblocking probe of the unexpected queue (``MPI_Iprobe``).

        Returns a :class:`Status` for the first matching buffered message,
        or ``None``.  Note: only sees messages that have already arrived.
        """
        env = self._rt.mailbox(self.rank).probe(source, tag)
        if env is None:
            return None
        return Status(source=env.source, tag=env.tag, size=env.size)

    # -- collectives (implemented in collectives.py) ----------------------------------
    def _next_coll_tag(self) -> int:
        """Tag for the next collective: all ranks call collectives in the
        same order, so per-rank counters agree."""
        tag = MAX_USER_TAG + (self._coll_seq % MAX_USER_TAG)
        self._coll_seq += 1
        return tag

    def barrier(self):
        from . import collectives

        return collectives.barrier(self)

    def bcast(self, size: int, root: int = 0, payload: Any = None):
        from . import collectives

        return collectives.bcast(self, size, root, payload)

    def reduce(self, size: int, root: int = 0, payload: Any = None, op=None):
        from . import collectives

        return collectives.reduce(self, size, root, payload, op)

    def allreduce(self, size: int, payload: Any = None, op=None):
        from . import collectives

        return collectives.allreduce(self, size, payload, op)

    def gather(self, size: int, root: int = 0, payload: Any = None):
        from . import collectives

        return collectives.gather(self, size, root, payload)

    def scatter(self, size: int, root: int = 0, payloads: list | None = None):
        from . import collectives

        return collectives.scatter(self, size, root, payloads)

    def allgather(self, size: int, payload: Any = None):
        from . import collectives

        return collectives.allgather(self, size, payload)

    def alltoall(self, size: int, payloads: list | None = None):
        from . import collectives

        return collectives.alltoall(self, size, payloads)

    def split(self, color, key: int | None = None):
        """Collective communicator split (``MPI_Comm_split``).

        Every rank of the world communicator must call this; ranks passing
        the same *color* form a new communicator, ordered by (*key*, world
        rank).  Pass ``color=None`` to opt out (``MPI_UNDEFINED``); such
        ranks receive ``None``.  Generator: ``sub = yield from
        comm.split(color)``.
        """
        from .subcomm import SubComm

        key = self.rank if key is None else key
        entries = yield from self.allgather(16, payload=(color, key, self.rank))
        seq = self._split_seq
        self._split_seq += 1
        if color is None:
            return None
        members = sorted(
            (k, r) for c, k, r in entries if c == color
        )
        colors = sorted({c for c, _k, _r in entries if c is not None}, key=repr)
        comm_id = seq * 4096 + colors.index(color)
        return SubComm(self, [r for _k, r in members], comm_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Comm rank={self.rank}/{self.size} node={self.node}>"
