"""The simulated MPI job launcher (``mpiexec`` for the virtual cluster).

:class:`MpiRun` wires together a :class:`~repro.simnet.engine.Simulator`,
a :class:`~repro.simnet.transport.Network`, per-node clocks and per-rank
mailboxes, then runs one generator *program* per rank::

    def program(comm):
        yield from comm.barrier()
        return comm.rank

    result = run_program(perseus(16), program, nprocs=32, ppn=2, seed=1)
    result.returns   # per-rank return values
    result.elapsed   # simulated wall-clock of the slowest rank

Rank placement is *block* order: rank r runs on node ``r // ppn``, so
ranks 0 and 1 share node 0 when ppn=2 -- matching how MPICH machinefiles
were written for Perseus, and making the MPIBench pairing (rank i with
rank i + P/2) talk between distinct nodes.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass, field
from typing import Any, Callable

from ..simnet.clock import ClockManager
from ..simnet.engine import DeadlockError, Simulator
from ..simnet.monitor import NetworkMonitor
from ..simnet.rng import RngRegistry
from ..simnet.topology import ClusterSpec
from ..simnet.transport import Network
from .comm import Comm
from .matching import Envelope, EnvelopeKind, Mailbox
from .status import CommAbort, MpiError

__all__ = ["MpiRun", "RunResult", "MpiDeadlock", "run_program"]


class MpiDeadlock(MpiError):
    """The simulated job deadlocked: some ranks blocked forever.

    Carries the list of blocked ranks and their mailbox state for
    diagnosis -- the same information PEVPM surfaces when it detects
    deadlock in a *model* (Section 5 of the paper).
    """

    def __init__(self, blocked: list[int], detail: str = ""):
        msg = f"MPI job deadlocked; blocked ranks: {blocked}"
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)
        self.blocked = blocked


@dataclass
class RunResult:
    """Outcome of a simulated MPI job."""

    returns: list[Any]  #: per-rank program return values
    finish_times: list[float]  #: per-rank true completion times (s)
    elapsed: float  #: completion time of the slowest rank (s)
    nprocs: int
    ppn: int
    spec: ClusterSpec
    monitor: NetworkMonitor = field(repr=False, default=None)
    #: per-rank PMPI-style counters (see :class:`repro.smpi.comm.CommStats`)
    comm_stats: list[dict] = field(repr=False, default_factory=list)

    @property
    def makespan(self) -> float:
        """Alias for :attr:`elapsed` (time to the last rank's finish)."""
        return self.elapsed


class MpiRun:
    """One simulated MPI job on a cluster."""

    def __init__(
        self,
        spec: ClusterSpec,
        nprocs: int,
        ppn: int = 1,
        seed: int = 0,
        perfect_clocks: bool = False,
    ):
        if ppn < 1 or ppn > spec.processors_per_node:
            raise ValueError(
                f"ppn={ppn} invalid for nodes with "
                f"{spec.processors_per_node} processors"
            )
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        nodes_needed = -(-nprocs // ppn)
        if nodes_needed > spec.n_nodes:
            raise ValueError(
                f"{nprocs} ranks at {ppn}/node need {nodes_needed} nodes; "
                f"cluster has {spec.n_nodes}"
            )
        self.spec = spec
        self.nprocs = nprocs
        self.ppn = ppn
        self.sim = Simulator()
        self.rngs = RngRegistry(seed)
        self.network = Network(self.sim, spec, self.rngs)
        self.clocks = ClockManager(spec.n_nodes, self.rngs, perfect=perfect_clocks)
        self._mailboxes = [Mailbox(r) for r in range(nprocs)]
        # Per-(src, dst) FIFO state: next sequence number to assign at
        # injection, next sequence number allowed to deliver, and events
        # for transfers waiting on a predecessor.
        self._send_seq: dict[tuple[int, int], int] = {}
        self._deliver_seq: dict[tuple[int, int], int] = {}
        self._fifo_waiters: dict[tuple[tuple[int, int], int], Any] = {}
        self.comms = [Comm(self, r) for r in range(nprocs)]

    # -- placement / plumbing ------------------------------------------------------
    def node_of(self, rank: int) -> int:
        """Cluster node hosting *rank* (block placement)."""
        if not 0 <= rank < self.nprocs:
            raise ValueError(f"rank {rank} outside job of {self.nprocs}")
        return rank // self.ppn

    def mailbox(self, rank: int) -> Mailbox:
        return self._mailboxes[rank]

    def deliver(self, dest_rank: int, env: Envelope) -> None:
        """Hand an arrived envelope to *dest_rank*'s matcher, completing a
        posted receive or starting the rendezvous reply as appropriate."""
        posted = self._mailboxes[dest_rank].deliver(env)
        if posted is None:
            return
        if env.kind is EnvelopeKind.RTS:
            env.on_match(posted)
        else:
            posted.event.succeed(env)

    def pair_seq(self, src_rank: int, dst_rank: int) -> int:
        """Assign the next in-order sequence number for a (src, dst)
        transfer.  Must be called at *injection* time (in MPI call order)."""
        key = (src_rank, dst_rank)
        seq = self._send_seq.get(key, 0)
        self._send_seq[key] = seq + 1
        return seq

    def pair_fifo(self, src_rank: int, dst_rank: int, seq: int):
        """Generator: gate a completed transfer until every earlier
        transfer of the same rank pair has delivered.

        Models the single TCP stream per pair: even if the fabric finishes
        a later message first (jitter), delivery order matches send order.
        """
        key = (src_rank, dst_rank)
        if self._deliver_seq.get(key, 0) < seq:
            event = self.sim.event(name=f"fifo:{key}:{seq}")
            self._fifo_waiters[(key, seq)] = event
            yield event
        self._deliver_seq[key] = seq + 1
        successor = self._fifo_waiters.pop((key, seq + 1), None)
        if successor is not None:
            successor.succeed(None)
        return None

    def spawn_system(self, gen: Generator, name: str = "system"):
        """Spawn an internal (non-rank) process, e.g. a message transfer."""
        return self.sim.spawn(gen, name=name)

    # -- running -----------------------------------------------------------------------
    def run(
        self,
        program: Callable[..., Generator],
        args: tuple = (),
        max_time: float | None = None,
    ) -> RunResult:
        """Execute *program(comm, *args)* on every rank to completion.

        Raises :class:`MpiDeadlock` if ranks block forever, or propagates
        the first rank exception (as on a real cluster, where it would
        abort the job).
        """
        returns: list[Any] = [None] * self.nprocs
        finish: list[float] = [float("nan")] * self.nprocs

        def wrap(rank: int):
            comm = self.comms[rank]
            value = yield from program(comm, *args)
            returns[rank] = value
            finish[rank] = self.sim.now
            return value

        procs = [
            self.sim.spawn(wrap(r), name=f"rank{r}") for r in range(self.nprocs)
        ]
        try:
            self.sim.run(until=max_time)
        except DeadlockError:
            blocked = [r for r, p in enumerate(procs) if p.is_alive]
            detail = self._deadlock_detail(blocked)
            raise MpiDeadlock(blocked, detail) from None

        unfinished = [r for r, p in enumerate(procs) if p.is_alive]
        if unfinished:
            raise CommAbort(
                f"ranks {unfinished} still running at max_time={max_time}"
            )
        comm_stats = [c.stats.as_dict() for c in self.comms]
        return RunResult(
            returns=returns,
            finish_times=finish,
            elapsed=max(finish),
            nprocs=self.nprocs,
            ppn=self.ppn,
            spec=self.spec,
            monitor=NetworkMonitor(self.network),
            comm_stats=comm_stats,
        )

    def _deadlock_detail(self, blocked: list[int]) -> str:
        parts = []
        for r in blocked[:8]:
            box = self._mailboxes[r]
            pend = [(p.source, p.tag) for p in box.posted]
            unexp = [(e.source, e.tag, e.size) for e in box.unexpected]
            parts.append(f"rank {r}: posted={pend} unexpected={unexp}")
        return "; ".join(parts)


def run_program(
    spec: ClusterSpec,
    program: Callable[..., Generator],
    nprocs: int,
    ppn: int = 1,
    seed: int = 0,
    perfect_clocks: bool = False,
    args: tuple = (),
    max_time: float | None = None,
) -> RunResult:
    """Convenience wrapper: build an :class:`MpiRun` and run *program*."""
    job = MpiRun(spec, nprocs=nprocs, ppn=ppn, seed=seed, perfect_clocks=perfect_clocks)
    return job.run(program, args=args, max_time=max_time)
