"""Message matching: posted receives and the unexpected-message queue.

Each rank owns a :class:`Mailbox`.  Incoming envelopes either match an
already-posted receive or park in the unexpected queue; a newly posted
receive first scans that queue.  Matching follows MPI semantics:

* a receive specifies an exact source or :data:`~repro.smpi.status.ANY_SOURCE`,
  and an exact tag or :data:`~repro.smpi.status.ANY_TAG`;
* candidates are considered in arrival order (for receives) / posting
  order (for envelopes), which preserves MPI's non-overtaking guarantee
  given that the transport layer delivers each sender's messages in order
  (our runtime enforces per-pair FIFO, mirroring one-TCP-connection-per-
  pair MPICH).

Envelopes come in two kinds: ``EAGER`` carries the payload with it (the
message has already physically arrived); ``RTS`` is a rendezvous
ready-to-send handshake whose match triggers the clear-to-send exchange in
:mod:`repro.smpi.comm`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

from .status import ANY_SOURCE, ANY_TAG

__all__ = ["EnvelopeKind", "Envelope", "PostedRecv", "Mailbox"]


class EnvelopeKind(enum.Enum):
    EAGER = "eager"
    RTS = "rts"


@dataclass
class Envelope:
    """One incoming message (or rendezvous handshake) at a receiver."""

    kind: EnvelopeKind
    source: int  #: sender rank
    tag: int
    size: int  #: payload bytes
    payload: Any = None
    arrival_time: float = 0.0  #: true time the message (or RTS) arrived
    transit_time: float = 0.0
    attempts: int = 1
    #: RTS only -- called with the matching PostedRecv to start the
    #: clear-to-send exchange.
    on_match: Callable[["PostedRecv"], None] | None = None


@dataclass
class PostedRecv:
    """One posted (pending) receive."""

    source: int  #: exact rank or ANY_SOURCE
    tag: int  #: exact tag or ANY_TAG
    #: engine Event that the receiving rank waits on; succeeds with the
    #: matched Envelope once the message data is fully available.
    event: Any = None
    matched: bool = False

    def accepts(self, env: Envelope) -> bool:
        if self.source != ANY_SOURCE and self.source != env.source:
            return False
        if self.tag != ANY_TAG and self.tag != env.tag:
            return False
        return True


class Mailbox:
    """Matching state for one rank."""

    def __init__(self, rank: int):
        self.rank = rank
        self.posted: list[PostedRecv] = []
        self.unexpected: list[Envelope] = []
        # Counters for diagnostics / tests.
        self.n_matched = 0
        self.n_unexpected = 0

    # -- receiver side -------------------------------------------------------
    def post(self, recv: PostedRecv) -> Envelope | None:
        """Post a receive.

        If an unexpected envelope already matches, it is removed and
        returned (the caller completes the receive immediately); otherwise
        the receive is queued and ``None`` is returned.
        """
        for i, env in enumerate(self.unexpected):
            if recv.accepts(env):
                del self.unexpected[i]
                recv.matched = True
                self.n_matched += 1
                return env
        self.posted.append(recv)
        return None

    def cancel(self, recv: PostedRecv) -> bool:
        """Remove a posted receive (used on abort paths); returns whether
        it was still pending."""
        try:
            self.posted.remove(recv)
            return True
        except ValueError:
            return False

    # -- network side -------------------------------------------------------------
    def deliver(self, env: Envelope) -> PostedRecv | None:
        """Hand an incoming envelope to the matcher.

        Returns the matching :class:`PostedRecv` if one was waiting, else
        parks the envelope in the unexpected queue and returns ``None``.
        """
        for i, recv in enumerate(self.posted):
            if recv.accepts(env):
                del self.posted[i]
                recv.matched = True
                self.n_matched += 1
                return recv
        self.unexpected.append(env)
        self.n_unexpected += 1
        return None

    # -- probing ------------------------------------------------------------------
    def probe(self, source: int, tag: int) -> Envelope | None:
        """Return (without removing) the first unexpected envelope matching
        (source, tag), or ``None``.  Supports wildcards like a receive."""
        pattern = PostedRecv(source=source, tag=tag)
        for env in self.unexpected:
            if pattern.accepts(env):
                return env
        return None

    @property
    def has_pending_state(self) -> bool:
        """True if any receive is still posted or any message unconsumed --
        used by the runtime to warn about requests leaked at finalize."""
        return bool(self.posted or self.unexpected)
