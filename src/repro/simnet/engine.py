"""Discrete-event simulation engine.

This module implements the event-driven kernel that underpins the cluster
network simulator (:mod:`repro.simnet`) and the simulated MPI runtime
(:mod:`repro.smpi`).  It provides a small but complete process-oriented
discrete-event framework in the style of SimPy:

* a :class:`Simulator` owning a time-ordered event queue,
* :class:`Event` objects that processes can wait on,
* :class:`Timeout` events that fire after a simulated delay,
* :class:`Process` objects wrapping Python generators -- a process *yields*
  events and is resumed when they trigger,
* :class:`AnyOf` / :class:`AllOf` composite conditions.

The engine is deterministic: events scheduled for the same simulated time
are processed in schedule order (FIFO), so a simulation driven by seeded
random streams is exactly reproducible.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def proc(sim, name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.spawn(proc(sim, "a", 2.0))
>>> _ = sim.spawn(proc(sim, "b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
from collections.abc import Generator
from typing import Any, Callable

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "DeadlockError",
]


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation kernel."""


class DeadlockError(SimulationError):
    """Raised by :meth:`Simulator.run` when live processes remain but no
    events are scheduled -- i.e. every process is waiting on an event that
    can never trigger."""


class Interrupt(Exception):
    """Thrown *into* a process by :meth:`Process.interrupt`.

    The interrupted process receives this exception at its current yield
    point and may catch it to implement cancellation or retry logic (the
    TCP retransmission model uses this).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait for.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`)
    *triggers* it, delivering ``value`` to every waiting process and every
    registered callback.  Triggering twice is an error: events model
    occurrences, not channels.
    """

    __slots__ = ("sim", "_value", "_ok", "_triggered", "_callbacks", "name", "_defused")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._callbacks: list[Callable[["Event"], None]] = []
        # Set when a waiter consumes this event's failure; an un-defused
        # failed Process is re-raised by the kernel (fail-fast).
        self._defused = False

    # -- introspection ----------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the event succeeded (meaningless before triggering)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value delivered by :meth:`succeed`, or the exception from
        :meth:`fail`."""
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, waking all waiters with *value*."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim._dispatch(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiters receive *exc* as a throw."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exc
        self.sim._dispatch(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register *fn* to run when the event triggers.

        If the event already triggered, *fn* runs at the next dispatch
        opportunity (immediately from the kernel's perspective).
        """
        if self._triggered:
            # Already fired: schedule callback at current time to preserve
            # the invariant that callbacks never run synchronously inside
            # the caller's frame.
            self.sim.call_at(self.sim.now, fn, self)
        else:
            self._callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<{type(self).__name__} {self.name!r} {state}>"


class Timeout(Event):
    """An event that triggers automatically after ``delay`` simulated
    seconds.  Created via :meth:`Simulator.timeout`."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim, name=f"timeout({delay:g})")
        self.delay = delay
        sim._schedule(sim.now + delay, self, value)


class Process(Event):
    """A simulated process: a generator driven by the event kernel.

    The wrapped generator yields :class:`Event` objects.  When a yielded
    event triggers, the process resumes with the event's value (or has the
    failure exception thrown into it).  A Process is itself an Event that
    triggers when the generator finishes, carrying the generator's return
    value -- so processes can wait on each other.
    """

    __slots__ = ("gen", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        if not isinstance(gen, Generator):
            raise TypeError(
                f"Process requires a generator, got {type(gen).__name__}; "
                "did you forget to call the process function?"
            )
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self.gen = gen
        self._waiting_on: Event | None = None
        # Kick off the process at the current simulated time.
        boot = Event(sim, name=f"boot:{self.name}")
        boot.add_callback(self._resume)
        self._waiting_on = boot
        sim._schedule(sim.now, boot, None)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        target = self._waiting_on
        if target is None:
            raise SimulationError(f"process {self.name!r} is not waiting")
        # Deliver the interrupt via a fresh immediate event so kernel
        # invariants (no synchronous resumption) hold.
        intr = Event(self.sim, name=f"interrupt:{self.name}")
        self._waiting_on = intr
        intr.add_callback(self._resume)
        self.sim._schedule(self.sim.now, intr, Interrupt(cause), ok=False)

    # -- kernel internals --------------------------------------------------
    def _resume(self, ev: Event) -> None:
        if self._triggered:  # interrupted after completion race; ignore
            return
        if ev is not self._waiting_on:
            # A stale event (e.g. superseded by an interrupt) fired; drop it.
            return
        self._waiting_on = None
        if not ev.ok:
            ev._defused = True  # this process consumes the failure
        try:
            if ev.ok:
                nxt = self.gen.send(ev.value)
            else:
                nxt = self.gen.throw(ev.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            raise SimulationError(
                f"process {self.name!r} did not handle an Interrupt"
            ) from None
        except Exception as exc:
            # The process died with an error: fail the process event so any
            # process waiting on it has the exception thrown at its yield
            # point.  If nobody is waiting the kernel re-raises (fail-fast).
            self.fail(exc)
            return
        if not isinstance(nxt, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {nxt!r}; processes must "
                "yield Event instances"
            )
        if nxt.sim is not self.sim:
            raise SimulationError("event belongs to a different Simulator")
        self._waiting_on = nxt
        nxt.add_callback(self._resume)


class _Condition(Event):
    """Shared machinery for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: list[Event], name: str):
        super().__init__(sim, name=name)
        self.events = list(events)
        for ev in self.events:
            if not isinstance(ev, Event):
                raise TypeError(f"condition operand {ev!r} is not an Event")
        self._pending = sum(1 for ev in self.events if not ev.triggered)
        if self._check_initial():
            return
        for ev in self.events:
            if not ev.triggered:
                ev.add_callback(self._on_child)

    def _check_initial(self) -> bool:
        raise NotImplementedError

    def _on_child(self, ev: Event) -> None:
        raise NotImplementedError

    def _values(self) -> dict[Event, Any]:
        return {ev: ev.value for ev in self.events if ev.triggered}


class AnyOf(_Condition):
    """Triggers as soon as any constituent event triggers.

    The value is a dict mapping each *already-triggered* event to its value,
    so a waiter can find out which one(s) fired.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: list[Event]):
        if not events:
            raise ValueError("AnyOf requires at least one event")
        super().__init__(sim, events, name="any_of")

    def _check_initial(self) -> bool:
        for ev in self.events:
            if ev.triggered:
                if ev.ok:
                    self.succeed(self._values())
                else:
                    ev._defused = True
                    self.fail(ev.value)
                return True
        return False

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev.ok:
            self.succeed(self._values())
        else:
            ev._defused = True
            self.fail(ev.value)


class AllOf(_Condition):
    """Triggers when every constituent event has triggered.

    The value is a dict mapping every event to its value.  Fails fast if any
    constituent fails.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: list[Event]):
        super().__init__(sim, events, name="all_of")

    def _check_initial(self) -> bool:
        for ev in self.events:
            if ev.triggered and not ev.ok:
                ev._defused = True
                self.fail(ev.value)
                return True
        if self._pending == 0:
            self.succeed(self._values())
            return True
        return False

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            ev._defused = True
            self.fail(ev.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._values())


class Simulator:
    """The discrete-event kernel: a clock plus a time-ordered event queue.

    All simulated entities (network resources, MPI processes, benchmark
    drivers) share one Simulator.  Time is a float in **seconds**; the
    kernel imposes no unit, but the whole of :mod:`repro` uses seconds.
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._queue: list[tuple[float, int, Event, Any, bool]] = []
        self._seq = 0  # tie-breaker preserving FIFO order at equal times
        self._live_processes = 0
        self._dispatching: list[Event] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event factories ---------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a new :class:`Process` running *gen* at the current time."""
        proc = Process(self, gen, name=name)
        self._live_processes += 1
        proc.add_callback(self._process_done)
        return proc

    def any_of(self, events: list[Event]) -> AnyOf:
        """Composite event: triggers when any of *events* does."""
        return AnyOf(self, events)

    def all_of(self, events: list[Event]) -> AllOf:
        """Composite event: triggers when all of *events* have."""
        return AllOf(self, events)

    def call_at(self, when: float, fn: Callable, *args: Any) -> None:
        """Schedule plain callable *fn(*args)* at absolute time *when*."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} before current time {self._now}"
            )
        ev = Event(self, name="call_at")
        ev._callbacks.append(lambda _ev: fn(*args))
        self._schedule(when, ev, None)

    # -- kernel internals ----------------------------------------------------
    def _process_done(self, ev: Event) -> None:
        self._live_processes -= 1

    def _schedule(self, when: float, ev: Event, value: Any, ok: bool = True) -> None:
        """Arrange for *ev* to trigger at absolute time *when*."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} before current time {self._now}"
            )
        heapq.heappush(self._queue, (when, self._seq, ev, value, ok))
        self._seq += 1

    def _dispatch(self, ev: Event) -> None:
        """Run the callbacks of an event that has just triggered."""
        self._dispatching.append(ev)
        if len(self._dispatching) > 1:
            # Re-entrant trigger (a callback triggered another event):
            # queue it behind the current dispatch to keep FIFO semantics.
            return
        while self._dispatching:
            current = self._dispatching[0]
            callbacks, current._callbacks = current._callbacks, []
            for fn in callbacks:
                fn(current)
            if (
                not current._ok
                and not current._defused
                and isinstance(current, Process)
            ):
                # A process failed and nothing consumed the failure:
                # surface the error instead of swallowing it.
                self._dispatching.clear()
                raise current._value
            self._dispatching.pop(0)

    # -- main loop -----------------------------------------------------------
    def step(self) -> None:
        """Advance to and process the next scheduled event."""
        when, _seq, ev, value, ok = heapq.heappop(self._queue)
        self._now = when
        if ev.triggered:
            # e.g. a timeout superseded by an interrupt -- drop silently.
            return
        if ok:
            ev.succeed(value)
        else:
            ev.fail(value)

    def run(self, until: float | None = None, detect_deadlock: bool = True) -> None:
        """Run until the queue drains or simulated time reaches *until*.

        Raises :class:`DeadlockError` if the queue drains while spawned
        processes are still alive (they are all waiting on events that can
        no longer trigger) and *detect_deadlock* is true.
        """
        while self._queue:
            when = self._queue[0][0]
            if until is not None and when > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until
        if detect_deadlock and self._live_processes > 0:
            raise DeadlockError(
                f"{self._live_processes} process(es) blocked with no pending events"
            )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")
