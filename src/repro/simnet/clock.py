"""Simulated per-node clocks with offset and drift.

The paper's central instrumentation claim is that benchmarking individual
(one-way) MPI operations requires "a very precise, globally synchronised
clock".  To reproduce that claim we give every simulated node its own local
clock that disagrees with true simulated time:

    ``local(t) = (1 + drift) * t + offset``

Timestamps taken by benchmark code on different nodes are therefore *not*
directly comparable -- exactly the situation on a real cluster -- and
:mod:`repro.mpibench.clocksync` must estimate and remove the offsets and
drifts.  Because the simulator knows true time, tests can verify that the
synchronisation algorithm actually recovers it.
"""

from __future__ import annotations

import numpy as np

from .rng import RngRegistry

__all__ = ["NodeClock", "ClockManager"]


class NodeClock:
    """One node's local clock: an affine distortion of true time."""

    __slots__ = ("node", "offset", "drift")

    def __init__(self, node: int, offset: float = 0.0, drift: float = 0.0):
        if drift <= -1.0:
            raise ValueError("drift must exceed -1 (time must move forward)")
        self.node = node
        self.offset = offset
        self.drift = drift

    def local_time(self, true_time: float) -> float:
        """What this node's clock reads at true simulated time *true_time*."""
        return (1.0 + self.drift) * true_time + self.offset

    def true_time(self, local_time: float) -> float:
        """Invert :meth:`local_time`."""
        return (local_time - self.offset) / (1.0 + self.drift)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeClock(node={self.node}, offset={self.offset:.3g}, drift={self.drift:.3g})"


class ClockManager:
    """Creates and holds the per-node clocks of a cluster.

    *offset_spread* is the standard deviation (seconds) of the initial
    clock offsets; *drift_spread* the standard deviation of the fractional
    frequency error.  Commodity PC oscillators of the period drifted on the
    order of tens of parts-per-million, and NTP-era offsets were in the
    milliseconds; the defaults reflect that.

    With ``perfect=True`` every clock reads true time -- convenient for
    tests that want to isolate other machinery from clock error.
    """

    def __init__(
        self,
        n_nodes: int,
        rngs: RngRegistry,
        offset_spread: float = 5e-3,
        drift_spread: float = 30e-6,
        perfect: bool = False,
    ):
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if offset_spread < 0 or drift_spread < 0:
            raise ValueError("spreads must be non-negative")
        self.n_nodes = n_nodes
        self.perfect = perfect
        rng = rngs.stream("clock.skew")
        self.clocks: list[NodeClock] = []
        for node in range(n_nodes):
            if perfect:
                self.clocks.append(NodeClock(node))
            else:
                offset = float(rng.normal(0.0, offset_spread))
                drift = float(rng.normal(0.0, drift_spread))
                # Guard against absurd draws that would break monotonicity.
                drift = float(np.clip(drift, -1e-3, 1e-3))
                self.clocks.append(NodeClock(node, offset=offset, drift=drift))

    def local_time(self, node: int, true_time: float) -> float:
        """Local reading of *node*'s clock at *true_time*."""
        return self.clocks[node].local_time(true_time)

    def true_time(self, node: int, local_time: float) -> float:
        """True time corresponding to a local reading on *node*."""
        return self.clocks[node].true_time(local_time)

    def max_disagreement(self, true_time: float) -> float:
        """Largest pairwise clock disagreement at *true_time* (diagnostics)."""
        readings = [c.local_time(true_time) for c in self.clocks]
        return max(readings) - min(readings)
