"""Ethernet framing arithmetic and effective-bandwidth helpers.

The paper reasons explicitly about framing overhead when diagnosing the
backplane saturation in Figure 4:

    "The onset of performance degradation began when a total of
    approximately 24 x 84.25 Mbit/s (since 81 Mbit/s is achieved between
    two processes for 16 Kbyte messages, plus 3.25 Mbit/s of Ethernet
    framing overhead) i.e. 2.02 Gbit/s was being delivered between the two
    fully utilised switches."

This module provides the payload/wire-rate conversions needed to make the
same argument about the simulated cluster: given a payload goodput, what
wire bandwidth does it consume, and how much of a switch backplane does a
set of flows occupy?
"""

from __future__ import annotations

from .topology import ClusterSpec, TcpModel

__all__ = [
    "frame_count",
    "wire_bytes",
    "framing_efficiency",
    "payload_goodput",
    "wire_rate_for_goodput",
    "framing_overhead_rate",
    "backplane_load",
]


def frame_count(payload: int, tcp: TcpModel) -> int:
    """Frames needed to carry *payload* bytes (>= 1: even a 0-byte MPI
    message sends one frame of headers)."""
    return tcp.frames_for(payload)


def wire_bytes(payload: int, tcp: TcpModel) -> int:
    """Total on-the-wire bytes for *payload*, including Ethernet/IP/TCP
    headers, preamble and inter-frame gap."""
    return tcp.wire_bytes(payload)


def framing_efficiency(payload: int, tcp: TcpModel) -> float:
    """payload / wire bytes: the fraction of wire capacity that is useful.

    Tends to ~0.949 for large messages with a 1500-byte MTU and 78 bytes of
    per-frame overhead, and to ~0 for tiny messages.
    """
    if payload < 0:
        raise ValueError("payload must be non-negative")
    wb = tcp.wire_bytes(payload)
    return payload / wb if wb else 0.0


def payload_goodput(payload: int, elapsed: float) -> float:
    """Observed payload bytes/second given a measured transfer time."""
    if elapsed <= 0:
        raise ValueError("elapsed must be positive")
    return payload / elapsed


def wire_rate_for_goodput(payload: int, goodput: float, tcp: TcpModel) -> float:
    """Wire bytes/second consumed by a flow achieving *goodput* payload
    bytes/second with messages of *payload* bytes.

    This is the quantity to compare against link and backplane capacities
    when predicting saturation (the paper's 84.25 Mbit/s per flow).
    """
    if goodput < 0:
        raise ValueError("goodput must be non-negative")
    eff = framing_efficiency(payload, tcp)
    if eff == 0.0:
        raise ValueError("zero-payload flows carry no goodput")
    return goodput / eff


def framing_overhead_rate(payload: int, goodput: float, tcp: TcpModel) -> float:
    """Wire bytes/second spent purely on framing for the given flow --
    the paper's '3.25 Mbit/s of Ethernet framing overhead' term."""
    return wire_rate_for_goodput(payload, goodput, tcp) - goodput


def backplane_load(
    spec: ClusterSpec,
    flows: list[tuple[int, int, float, int]],
) -> list[float]:
    """Aggregate wire load (bytes/s) on each stacking link of the cluster.

    *flows* is a list of ``(src_node, dst_node, goodput_bytes_per_s,
    message_payload_bytes)`` tuples.  Returns one load figure per stacking
    link (there are ``n_switches - 1``); compare each against
    ``spec.backplane_bandwidth`` to predict inter-switch saturation.
    """
    loads = [0.0] * max(0, spec.n_switches - 1)
    for src, dst, goodput, payload in flows:
        ssw, dsw = spec.switch_of(src), spec.switch_of(dst)
        if ssw == dsw:
            continue
        rate = wire_rate_for_goodput(payload, goodput, spec.tcp)
        for link in spec.stacking_links(ssw, dsw):
            loads[link] += rate
    return loads
