"""Fabric utilisation monitoring and saturation diagnosis.

The paper diagnoses the Figure 4 performance collapse by an explicit
capacity argument: the aggregate wire rate crossing the switch stack
(~2.02 Gbit/s) reached the 2.1 Gbit/s backplane limit.  This module lets
experiments make the same argument about a simulated run: which pipes were
busiest, which saturated, and how much time messages spent queued.
"""

from __future__ import annotations

from dataclasses import dataclass

from .transport import Network

__all__ = ["ResourceReport", "NetworkMonitor"]


@dataclass(frozen=True)
class ResourceReport:
    """One pipe's utilisation summary over an observation window."""

    name: str
    rate: float  #: capacity in bytes/s
    messages: int
    bytes: int
    utilisation: float  #: busy fraction of the window
    max_backlog: float  #: worst queueing delay seen by an arrival (s)
    queued_fraction: float  #: fraction of arrivals that found the pipe busy

    @property
    def saturated(self) -> bool:
        """Heuristic saturation flag: pipe busy >85% of the window or
        arrivals routinely queueing behind >2.5 ms of backlog."""
        return self.utilisation > 0.85 or self.max_backlog > 2.5e-3


class NetworkMonitor:
    """Summarises a :class:`~repro.simnet.transport.Network` after a run."""

    def __init__(self, network: Network):
        self.network = network

    def _report(self, res) -> ResourceReport:
        stats = res.stats
        elapsed = self.network.sim.now
        util = res.utilisation(elapsed)
        queued_fraction = (
            stats.queued_messages / stats.messages if stats.messages else 0.0
        )
        return ResourceReport(
            name=res.name,
            rate=res.rate,
            messages=stats.messages,
            bytes=stats.bytes,
            utilisation=util,
            max_backlog=stats.max_backlog,
            queued_fraction=queued_fraction,
        )

    def reports(self) -> list[ResourceReport]:
        """One report per pipe, sorted by utilisation descending."""
        net = self.network
        resources = [*net.nic_tx, *net.nic_rx, *net.fabric, *net.stack.values()]
        reports = [self._report(r) for r in resources]
        reports.sort(key=lambda r: r.utilisation, reverse=True)
        return reports

    def saturated(self) -> list[ResourceReport]:
        """Just the pipes the heuristic flags as saturated."""
        return [r for r in self.reports() if r.saturated]

    def backplane_reports(self) -> list[ResourceReport]:
        """Reports for the stacking links only -- the paper's bottleneck."""
        return [self._report(r) for r in self.network.stack.values()]

    def total_bytes(self) -> int:
        """Total *wire* bytes (payload plus framing) that crossed any NIC
        transmit pipe -- the amount of inter-node traffic injected."""
        return sum(r.stats.bytes for r in self.network.nic_tx)

    def summary(self) -> dict:
        """Compact dict for EXPERIMENTS.md and report printing."""
        reports = self.reports()
        return {
            "elapsed_s": self.network.sim.now,
            "busiest": reports[0].name if reports else None,
            "busiest_utilisation": reports[0].utilisation if reports else 0.0,
            "n_saturated": sum(1 for r in reports if r.saturated),
            "total_inter_node_bytes": self.total_bytes(),
        }
