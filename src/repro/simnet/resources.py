"""Bandwidth resources: the shared bit-pipes where contention happens.

Every potentially-congested element of the cluster -- a node's NIC transmit
side, its receive side, and each inter-switch stacking link -- is modelled
as a :class:`BandwidthResource`: a FIFO pipe that serialises transfers at a
fixed byte rate.  A transfer that arrives while the pipe is busy queues
behind the in-flight bytes; the queueing delay it experiences *is* the
contention the paper measures.

The model is message-granular (one reservation per message crossing the
resource) rather than packet-granular; per-frame costs are folded into the
wire-byte count by :class:`repro.simnet.topology.TcpModel`.  This keeps the
event count per message ~O(hops), small enough for pure-Python simulation
of hundred-process benchmarks, while preserving the queueing behaviour that
produces the paper's distributions.
"""

from __future__ import annotations

from .engine import Event, Simulator

__all__ = ["BandwidthResource", "ResourceStats"]


class ResourceStats:
    """Running statistics of one resource, for saturation analysis."""

    __slots__ = ("messages", "bytes", "busy_time", "max_backlog", "queued_messages")

    def __init__(self) -> None:
        self.messages = 0
        self.bytes = 0
        self.busy_time = 0.0
        self.max_backlog = 0.0
        self.queued_messages = 0  # arrivals that found the pipe busy

    def as_dict(self) -> dict:
        return {
            "messages": self.messages,
            "bytes": self.bytes,
            "busy_time": self.busy_time,
            "max_backlog": self.max_backlog,
            "queued_messages": self.queued_messages,
        }


class BandwidthResource:
    """A FIFO pipe with a fixed drain rate in bytes/second.

    Transfers are non-preemptive and served in arrival order.  The key
    quantity is :attr:`backlog`: how long a byte arriving *now* would wait
    before the pipe starts serving it.  The transport layer uses backlog
    both for contention jitter and for the TCP loss probability.
    """

    __slots__ = ("sim", "name", "rate", "_available_at", "stats", "in_flight")

    def __init__(self, sim: Simulator, rate: float, name: str = "pipe"):
        if rate <= 0:
            raise ValueError(f"resource rate must be positive, got {rate}")
        self.sim = sim
        self.name = name
        self.rate = rate
        self._available_at = 0.0
        self.stats = ResourceStats()
        #: number of reservations currently queued or draining -- the
        #: instantaneous contention level other messages see.
        self.in_flight = 0

    @property
    def backlog(self) -> float:
        """Seconds of already-committed work queued ahead of a new arrival."""
        return max(0.0, self._available_at - self.sim.now)

    @property
    def busy(self) -> bool:
        return self._available_at > self.sim.now

    def service_time(self, nbytes: int) -> float:
        """Pure serialisation time of *nbytes* through this pipe."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / self.rate

    def transmit(self, nbytes: int, service_scale: float = 1.0) -> Event:
        """Reserve the pipe for *nbytes*; returns an Event triggering when
        the last byte has drained.

        *service_scale* multiplies the nominal serialisation time; the
        transport layer uses it to apply contention jitter so that the
        slowdown occupies the pipe (and is therefore seen by *later*
        messages too), rather than being a private delay.
        """
        if service_scale <= 0:
            raise ValueError("service_scale must be positive")
        now = self.sim.now
        backlog = self.backlog
        start = now + backlog
        service = self.service_time(nbytes) * service_scale
        finish = start + service

        st = self.stats
        st.messages += 1
        st.bytes += nbytes
        st.busy_time += service
        if backlog > 0.0:
            st.queued_messages += 1
            if backlog > st.max_backlog:
                st.max_backlog = backlog

        self._available_at = finish
        self.in_flight += 1
        done = self.sim.event(name=f"{self.name}:tx")
        done.add_callback(self._drained)
        self.sim._schedule(finish, done, nbytes)
        return done

    def _drained(self, _ev) -> None:
        self.in_flight -= 1

    def utilisation(self, elapsed: float | None = None) -> float:
        """Fraction of time the pipe has been busy since t=0 (or over a
        caller-supplied *elapsed* horizon)."""
        horizon = self.sim.now if elapsed is None else elapsed
        if horizon <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time / horizon)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BandwidthResource {self.name!r} rate={self.rate:.3g}B/s "
            f"backlog={self.backlog:.3g}s>"
        )
