"""Named, seeded random-number streams.

Every stochastic subsystem in the simulator (link jitter, TCP loss, clock
skew, PEVPM Monte Carlo sampling) draws from its own independent stream so
that

* a whole simulation is exactly reproducible from a single master seed, and
* changing how one subsystem consumes randomness does not perturb the
  others (no accidental coupling through a shared global generator).

Streams are derived with :class:`numpy.random.SeedSequence` spawning keyed
by the stream name, which gives high-quality independent child seeds.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """A factory of independent named :class:`numpy.random.Generator` s.

    >>> rngs = RngRegistry(seed=42)
    >>> a = rngs.stream("tcp.loss")
    >>> b = rngs.stream("link.jitter")
    >>> a is rngs.stream("tcp.loss")   # streams are cached by name
    True

    Two registries with the same master seed produce identical streams; the
    same registry never hands out correlated streams for different names.
    """

    def __init__(self, seed: int = 0):
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            # Derive a stable 32-bit key from the name so the stream depends
            # only on (seed, name), not on creation order.
            key = zlib.crc32(name.encode("utf-8"))
            ss = np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
            gen = np.random.default_rng(ss)
            self._streams[name] = gen
        return gen

    def reseed(self, seed: int) -> None:
        """Drop all cached streams and restart from a new master seed."""
        self.seed = seed
        self._streams.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
