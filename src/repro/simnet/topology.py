"""Cluster topology description.

A :class:`ClusterSpec` captures everything the network simulator needs to
know about a machine: how many nodes, how many processors per node, which
switch each node hangs off, link and backplane capacities, protocol
parameters, and host software overheads.

The :func:`perseus` factory reproduces the machine evaluated in the paper:

    "Perseus has 116 dual processor nodes, each with 500 MHz Pentium III
    processors and 256 MB of RAM.  Individual nodes are connected by
    commodity switched 100 Mbit/s Ethernet, built around five 24 port
    Intel 510T switches with stackable matrix cards that provide
    2.1 Gbit/s of backplane bandwidth per switch."

All bandwidths are stored in **bytes per second** and all times in
**seconds**.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "HostModel",
    "TcpModel",
    "ClusterSpec",
    "perseus",
    "gigabit_cluster",
    "ideal_cluster",
]

MBIT = 1e6 / 8.0  # one megabit per second, in bytes/s
GBIT = 1e9 / 8.0


@dataclass(frozen=True)
class HostModel:
    """Per-host software costs of sending / receiving a message.

    These model the MPICH + TCP/IP stack traversal on a 500 MHz PIII:
    a fixed per-message overhead plus a per-byte memory-copy cost.  The
    values are calibrated so that the contention-free small-message latency
    and the large-message goodput land in the regime the paper reports
    (~81 Mbit/s payload goodput for 16 KB messages, one-way small-message
    latencies of tens of microseconds).
    """

    send_overhead: float = 28e-6  #: fixed CPU cost to initiate a send (s)
    recv_overhead: float = 25e-6  #: fixed CPU cost to complete a receive (s)
    byte_copy_cost: float = 6e-9  #: per-byte memcpy cost through the stack (s/B)
    smp_latency: float = 12e-6  #: fixed latency for intra-node (shared-memory) messages (s)
    smp_bandwidth: float = 160 * MBIT  #: shared-memory transfer bandwidth (B/s)

    def validate(self) -> None:
        for name in ("send_overhead", "recv_overhead", "byte_copy_cost",
                     "smp_latency"):
            if getattr(self, name) < 0:
                raise ValueError(f"HostModel.{name} must be non-negative")
        if self.smp_bandwidth <= 0:
            raise ValueError("HostModel.smp_bandwidth must be positive")


@dataclass(frozen=True)
class TcpModel:
    """TCP behaviour relevant to communication benchmarking.

    The paper attributes the extreme outliers in Figures 3-4 to dropped
    packets and retransmission timeouts on a saturated Ethernet:

        "Severe contention on an Ethernet network, however, sometimes leads
        to lost messages and thus retransmissions, which leads to outliers
        in the distribution at values related to the network's
        retransmission timeout parameters."

    We model loss as a per-message Bernoulli event whose probability rises
    with the backlog (queueing delay) at the bottleneck resource the message
    crosses; a loss adds one RTO (plus the time to resend).  Linux 2.2's
    minimum RTO was 200 ms.
    """

    mtu: int = 1500  #: Ethernet MTU in bytes
    header_bytes: int = 58  #: per-frame overhead: 18 Eth + 20 IP + 20 TCP
    preamble_gap_bytes: int = 20  #: preamble (8) + inter-frame gap (12)
    rto: float = 0.200  #: retransmission timeout (s)
    rto_jitter: float = 0.020  #: uniform jitter applied to each RTO (s)
    max_retransmits: int = 6  #: give up (error) after this many RTOs
    loss_backlog_threshold: float = 2.5e-3  #: backlog (s) where loss starts
    loss_backlog_scale: float = 20e-3  #: backlog scale of the loss ramp (s)
    loss_max_probability: float = 0.12  #: ceiling on per-message loss prob

    @property
    def payload_per_frame(self) -> int:
        """TCP payload bytes carried by one full-size frame."""
        return self.mtu - 40  # IP (20) + TCP (20) headers inside the MTU

    @property
    def wire_bytes_per_frame(self) -> int:
        """Total bytes a full frame occupies on the wire, incl. preamble/IFG."""
        return self.mtu + 18 + self.preamble_gap_bytes

    def frames_for(self, payload: int) -> int:
        """Number of frames needed to carry *payload* bytes (at least 1)."""
        if payload < 0:
            raise ValueError("payload must be non-negative")
        per = self.payload_per_frame
        return max(1, -(-payload // per))

    def wire_bytes(self, payload: int) -> int:
        """Bytes that *payload* occupies on the wire including all per-frame
        overhead (Ethernet + IP + TCP headers, preamble, inter-frame gap)."""
        frames = self.frames_for(payload)
        overhead = 18 + 20 + 20 + self.preamble_gap_bytes  # per frame
        return payload + frames * overhead

    def validate(self) -> None:
        if self.mtu <= 40:
            raise ValueError("TcpModel.mtu must exceed 40 bytes of headers")
        if self.rto <= 0:
            raise ValueError("TcpModel.rto must be positive")
        if not 0.0 <= self.loss_max_probability <= 1.0:
            raise ValueError("loss_max_probability must be in [0, 1]")
        if self.max_retransmits < 0:
            raise ValueError("max_retransmits must be non-negative")


@dataclass(frozen=True)
class ClusterSpec:
    """Complete description of a simulated cluster.

    Nodes are assigned to switches round-robin in blocks:  node ``i`` hangs
    off switch ``i // ports_per_switch``.  Switches are stacked in a chain;
    traffic between switch ``a`` and switch ``b`` crosses every stacking
    link between them, each of which has ``backplane_bandwidth`` capacity.
    """

    name: str = "cluster"
    n_nodes: int = 16
    processors_per_node: int = 2
    link_bandwidth: float = 100 * MBIT  #: node uplink capacity (B/s), full duplex
    link_latency: float = 25e-6  #: one-way wire + switch port latency (s)
    switch_latency: float = 8e-6  #: store-and-forward latency per switch hop (s)
    ports_per_switch: int = 24
    n_switches: int = 1
    backplane_bandwidth: float = 2.1 * GBIT  #: per stacking link (B/s)
    #: shared switching capacity of each switch's internal fabric (B/s).
    #: 24 ports x 100 Mbit/s = 2.4 Gbit/s offered load against a 2.1 Gbit/s
    #: fabric: a fully busy switch is ~1.14x oversubscribed, which is where
    #: the growing contention with node count (Figure 1) comes from.
    switch_fabric_bandwidth: float = 2.1 * GBIT
    host: HostModel = field(default_factory=HostModel)
    tcp: TcpModel = field(default_factory=TcpModel)
    eager_threshold: int = 16 * 1024  #: MPICH eager->rendezvous switch (B)
    #: multiplicative jitter: service times are scaled by LogNormal(0, sigma)
    #: clamped at >=1, with sigma growing with the number of concurrently
    #: in-flight messages sharing the path -- see transport.py.
    jitter_base_sigma: float = 0.04
    jitter_contention_sigma: float = 0.35
    #: per-message congestion delay: each concurrently in-flight message
    #: sharing a path resource adds an exponential delay with this mean.
    #: Models per-packet OS/interrupt and switch-ASIC contention costs that
    #: a message-granular bandwidth model cannot capture; calibrated so a
    #: 1 KB message with 64 communicating processes runs ~70% slower than
    #: contention-free (the paper's Figure 1 observation).
    congestion_delay_mean: float = 4e-6
    #: serial compute time for one whole-grid Jacobi sweep of the paper's
    #: 256x256 problem, used by apps and the PEVPM Serial directive (s).
    jacobi_serial_time: float = 3.24e-3

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.processors_per_node < 1:
            raise ValueError("processors_per_node must be >= 1")
        if (
            self.link_bandwidth <= 0
            or self.backplane_bandwidth <= 0
            or self.switch_fabric_bandwidth <= 0
        ):
            raise ValueError("bandwidths must be positive")
        if self.link_latency < 0 or self.switch_latency < 0:
            raise ValueError("latencies must be non-negative")
        needed = -(-self.n_nodes // self.ports_per_switch)
        if self.n_switches < needed:
            raise ValueError(
                f"{self.n_nodes} nodes need at least {needed} switches of "
                f"{self.ports_per_switch} ports, got {self.n_switches}"
            )
        if self.eager_threshold < 0:
            raise ValueError("eager_threshold must be non-negative")
        self.host.validate()
        self.tcp.validate()

    # -- placement ----------------------------------------------------------
    def switch_of(self, node: int) -> int:
        """Index of the switch that *node* is cabled to."""
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range [0, {self.n_nodes})")
        return node // self.ports_per_switch

    def stacking_links(self, src_switch: int, dst_switch: int) -> list[int]:
        """Indices of the stacking links crossed between two switches.

        Link *k* joins switch *k* and switch *k+1* in the stack chain.
        """
        for s in (src_switch, dst_switch):
            if not 0 <= s < self.n_switches:
                raise ValueError(f"switch {s} out of range [0, {self.n_switches})")
        lo, hi = sorted((src_switch, dst_switch))
        return list(range(lo, hi))

    @property
    def total_processors(self) -> int:
        return self.n_nodes * self.processors_per_node

    def with_(self, **changes) -> "ClusterSpec":
        """Functional update, e.g. ``spec.with_(eager_threshold=8192)``."""
        return replace(self, **changes)


def perseus(n_nodes: int = 116) -> ClusterSpec:
    """The Perseus cluster of the paper (Section 3), possibly truncated.

    116 dual-PIII nodes on switched 100 Mbit/s Fast Ethernet; five 24-port
    Intel 510T switches stacked with 2.1 Gbit/s matrix cards.
    """
    if not 1 <= n_nodes <= 116:
        raise ValueError("perseus has between 1 and 116 nodes")
    return ClusterSpec(
        name="perseus",
        n_nodes=n_nodes,
        processors_per_node=2,
        link_bandwidth=100 * MBIT,
        ports_per_switch=24,
        n_switches=5,
        backplane_bandwidth=2.1 * GBIT,
    )


def gigabit_cluster(n_nodes: int = 64) -> ClusterSpec:
    """A follow-on commodity cluster with Gigabit Ethernet.

    The thesis behind the paper validated PEVPM "on a variety of cluster
    computers with different communication networks"; this factory gives a
    second network point: 1 Gbit/s links into a single large modular
    switch with ample fabric, lower per-message host overheads (faster
    CPUs), and a 200 ms RTO.  Contention effects are far milder than on
    perseus -- which cross-network experiments can demonstrate.
    """
    if not 1 <= n_nodes <= 128:
        raise ValueError("gigabit cluster supports 1-128 nodes")
    return ClusterSpec(
        name="gigabit",
        n_nodes=n_nodes,
        processors_per_node=2,
        link_bandwidth=1000 * MBIT,
        link_latency=15e-6,
        switch_latency=4e-6,
        ports_per_switch=128,
        n_switches=1,
        backplane_bandwidth=32 * GBIT,
        switch_fabric_bandwidth=32 * GBIT,
        host=HostModel(
            send_overhead=12e-6,
            recv_overhead=10e-6,
            byte_copy_cost=2e-9,
            smp_latency=6e-6,
            smp_bandwidth=800 * MBIT,
        ),
        # A 10x faster network drains queues 10x sooner: both the
        # per-message contention cost and its spread scale down.
        congestion_delay_mean=0.4e-6,
        jitter_contention_sigma=0.18,
        jacobi_serial_time=1.1e-3,  # faster CPUs sweep the grid sooner
    )


def ideal_cluster(n_nodes: int = 16, processors_per_node: int = 1) -> ClusterSpec:
    """A contention-light, loss-free cluster for deterministic tests.

    Infinite-ish backplane, no TCP loss, no jitter: message times collapse
    to the deterministic ``l + b/W`` form, which unit tests can predict
    exactly.
    """
    n_switches = max(1, -(-n_nodes // 24))
    return ClusterSpec(
        name="ideal",
        n_nodes=n_nodes,
        processors_per_node=processors_per_node,
        n_switches=n_switches,
        backplane_bandwidth=1e12,
        switch_fabric_bandwidth=1e12,
        jitter_base_sigma=0.0,
        jitter_contention_sigma=0.0,
        congestion_delay_mean=0.0,
        tcp=TcpModel(loss_max_probability=0.0),
    )
