"""Discrete-event cluster network simulator.

This subpackage is the substitute for the physical Perseus cluster the
paper benchmarked (see DESIGN.md section 2): a seeded, deterministic
discrete-event model of nodes, NICs, stacked Ethernet switches and the TCP
behaviour above them.  The simulated MPI runtime (:mod:`repro.smpi`) runs
on top of it; MPIBench and PEVPM never look inside.
"""

from .clock import ClockManager, NodeClock
from .engine import (
    AllOf,
    AnyOf,
    DeadlockError,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .monitor import NetworkMonitor, ResourceReport
from .resources import BandwidthResource, ResourceStats
from .rng import RngRegistry
from .tcp import TcpBehaviour, TransmissionAborted
from .topology import (
    GBIT,
    MBIT,
    ClusterSpec,
    HostModel,
    TcpModel,
    gigabit_cluster,
    ideal_cluster,
    perseus,
)
from .transport import Delivery, Network

__all__ = [
    "AllOf",
    "AnyOf",
    "BandwidthResource",
    "ClockManager",
    "ClusterSpec",
    "DeadlockError",
    "Delivery",
    "Event",
    "GBIT",
    "HostModel",
    "Interrupt",
    "MBIT",
    "Network",
    "NetworkMonitor",
    "NodeClock",
    "Process",
    "ResourceReport",
    "ResourceStats",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "TcpBehaviour",
    "TcpModel",
    "Timeout",
    "TransmissionAborted",
    "gigabit_cluster",
    "ideal_cluster",
    "perseus",
]
