"""End-to-end message transport across the simulated cluster fabric.

A message from a process on node *s* to a process on node *d* crosses, in
a pipelined fashion:

* the sending node's NIC transmit pipe (100 Mbit/s on Perseus),
* zero or more inter-switch stacking links (2.1 Gbit/s each),
* the receiving node's NIC receive pipe.

Each of those is a :class:`~repro.simnet.resources.BandwidthResource`; the
message reserves its wire-byte footprint on all of them concurrently and
completes when the slowest (most backlogged) reservation drains, plus the
fixed propagation/switching latency of the path.  This "reserve everywhere,
finish at the max" scheme models store-and-forward pipelining at message
granularity: with empty queues the transfer time is ``latency +
wire_bytes/bottleneck_rate``, and under load each shared pipe contributes
its own queueing delay -- which is exactly the contention MPIBench measures.

Two stochastic effects ride on top:

* **contention jitter** -- the NIC service time is scaled by a lognormal
  factor whose spread grows with the bottleneck backlog, modelling OS
  scheduling, interrupt coalescing and Ethernet back-off variability that
  grow under load (this produces the widening PDFs of Figure 3);
* **TCP loss** -- per-attempt drops with backlog-dependent probability,
  each costing a retransmission timeout (the Figure 4 outliers).

Intra-node messages bypass the fabric entirely and use the host's
shared-memory latency/bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from .engine import Process, Simulator
from .resources import BandwidthResource
from .rng import RngRegistry
from .tcp import TcpBehaviour, TransmissionAborted
from .topology import ClusterSpec

__all__ = ["Delivery", "Network"]


@dataclass(frozen=True)
class Delivery:
    """Outcome of one message transit, returned by :meth:`Network.send`."""

    src_node: int
    dst_node: int
    payload: int  #: MPI payload bytes
    depart_time: float  #: true simulated time the message entered the fabric
    arrive_time: float  #: true simulated time the last byte arrived
    attempts: int  #: 1 for a clean transit, >1 if retransmitted
    rto_stall: float  #: total time spent stalled in retransmission timeouts

    @property
    def transit_time(self) -> float:
        return self.arrive_time - self.depart_time


class Network:
    """The cluster fabric: all shared pipes plus the stochastic models."""

    def __init__(self, sim: Simulator, spec: ClusterSpec, rngs: RngRegistry):
        self.sim = sim
        self.spec = spec
        self.tcp = TcpBehaviour(spec.tcp, rngs)
        self._jitter = rngs.stream("link.jitter")

        self.nic_tx = [
            BandwidthResource(sim, spec.link_bandwidth, name=f"nic_tx[{i}]")
            for i in range(spec.n_nodes)
        ]
        self.nic_rx = [
            BandwidthResource(sim, spec.link_bandwidth, name=f"nic_rx[{i}]")
            for i in range(spec.n_nodes)
        ]
        # One resource per stacking link per direction (full duplex).
        n_links = max(0, spec.n_switches - 1)
        self.stack = {
            (k, direction): BandwidthResource(
                sim, spec.backplane_bandwidth, name=f"stack[{k}]{direction}"
            )
            for k in range(n_links)
            for direction in ("+", "-")
        }
        # Each switch's internal fabric is shared by all its ports; with
        # 24 x 100 Mbit/s ports on a 2.1 Gbit/s fabric a fully loaded
        # switch is slightly oversubscribed -- the physical origin of the
        # node-count contention in Figure 1.
        self.fabric = [
            BandwidthResource(sim, spec.switch_fabric_bandwidth, name=f"fabric[{s}]")
            for s in range(spec.n_switches)
        ]
        #: number of inter-node messages currently in transit anywhere in
        #: the fabric.  This is the simulator's contention level -- the same
        #: quantity PEVPM tracks on its contention scoreboard ("the total
        #: number of messages on the scoreboard"), so the ground truth and
        #: the model agree on what contention *is*.
        self.active_transfers = 0

    # -- path construction ---------------------------------------------------
    def path_resources(self, src_node: int, dst_node: int) -> list[BandwidthResource]:
        """All shared pipes a (src -> dst) message reserves, in hop order."""
        if src_node == dst_node:
            return []
        ssw = self.spec.switch_of(src_node)
        dsw = self.spec.switch_of(dst_node)
        direction = "+" if dsw >= ssw else "-"
        path: list[BandwidthResource] = [self.nic_tx[src_node], self.fabric[ssw]]
        for link in self.spec.stacking_links(ssw, dsw):
            path.append(self.stack[(link, direction)])
        if dsw != ssw:
            path.append(self.fabric[dsw])
        path.append(self.nic_rx[dst_node])
        return path

    def path_latency(self, src_node: int, dst_node: int) -> float:
        """Fixed propagation + switching latency of the path (seconds)."""
        if src_node == dst_node:
            return self.spec.host.smp_latency
        ssw = self.spec.switch_of(src_node)
        dsw = self.spec.switch_of(dst_node)
        switch_hops = 1 + abs(dsw - ssw)
        return 2 * self.spec.link_latency + switch_hops * self.spec.switch_latency

    # -- stochastic helpers ----------------------------------------------------
    def _jitter_scale(self, contention: int) -> float:
        """Multiplicative lognormal service-time jitter.

        sigma interpolates from ``jitter_base_sigma`` (idle) towards
        ``jitter_base_sigma + jitter_contention_sigma`` as the number of
        concurrently in-flight messages sharing the path grows; the
        saturating form keeps extreme contention from producing unbounded
        variance.  This is what widens the measured PDFs with n x p
        (Figure 3).
        """
        s = self.spec
        if s.jitter_base_sigma == 0.0 and s.jitter_contention_sigma == 0.0:
            return 1.0
        softness = 12.0  # in-flight count at which half the extra spread applies
        sigma = s.jitter_base_sigma + s.jitter_contention_sigma * (
            contention / (contention + softness)
        )
        # Clamp at 1: jitter only ever slows a transfer down, so the
        # contention-free time is a hard lower bound -- the paper's PDFs
        # "rise from a bounded minimum time".
        return max(1.0, float(self._jitter.lognormal(mean=0.0, sigma=sigma)))

    def _congestion_delay(self, contention: int) -> float:
        """Additive per-message cost of sharing the path with *contention*
        other in-flight messages.

        Models the per-packet costs a message-granular bandwidth model
        cannot see: interrupt handling for interleaved streams, switch-ASIC
        arbitration, Ethernet flow control.  Exponentially distributed with
        mean ``congestion_delay_mean * contention``: zero when alone, and
        growing linearly with the number of simultaneous communicating
        processes -- the Figure 1 effect, and the reason a fixed ping-pong
        'average' mispredicts large machines.
        """
        mean = self.spec.congestion_delay_mean * contention
        if mean <= 0.0:
            return 0.0
        return float(self._jitter.exponential(mean))

    # -- sending -----------------------------------------------------------------
    def send(self, src_node: int, dst_node: int, payload: int) -> Process:
        """Inject a message; returns a Process whose value is a :class:`Delivery`.

        The caller (the simulated MPI layer) typically does::

            delivery = yield network.send(src, dst, nbytes)
        """
        for node in (src_node, dst_node):
            if not 0 <= node < self.spec.n_nodes:
                raise ValueError(f"node {node} outside cluster of {self.spec.n_nodes}")
        if payload < 0:
            raise ValueError("payload must be non-negative")
        name = f"xfer:{src_node}->{dst_node}:{payload}B"
        return self.sim.spawn(self._transfer(src_node, dst_node, payload), name=name)

    def _transfer(self, src_node: int, dst_node: int, payload: int):
        sim = self.sim
        depart = sim.now

        if src_node == dst_node:
            # Shared-memory path: latency + bandwidth, light jitter only.
            host = self.spec.host
            delay = host.smp_latency + payload / host.smp_bandwidth
            delay *= self._jitter_scale(0.0)
            yield sim.timeout(delay)
            return Delivery(src_node, dst_node, payload, depart, sim.now, 1, 0.0)

        wire = self.spec.tcp.wire_bytes(payload)
        path = self.path_resources(src_node, dst_node)
        latency = self.path_latency(src_node, dst_node)
        attempts = 0
        stall = 0.0

        # Contention seen by this message: every other message currently in
        # transit through the fabric (the PEVPM scoreboard population).
        contention = self.active_transfers
        self.active_transfers += 1
        try:
            while True:
                attempts += 1
                backlog = max(r.backlog for r in path)
                scale = self._jitter_scale(contention)
                reservations = []
                for res in path:
                    # Jitter models host/NIC-side variability; the switch
                    # backplane is a deterministic fabric, so only the two
                    # NIC pipes get the scaled service time.
                    is_nic = res is path[0] or res is path[-1]
                    reservations.append(
                        res.transmit(wire, scale if is_nic else 1.0)
                    )
                congestion = self._congestion_delay(contention)
                if congestion > 0.0:
                    yield sim.timeout(congestion)
                yield sim.all_of(reservations)

                if not self.tcp.attempt_is_lost(backlog):
                    break
                if attempts > self.spec.tcp.max_retransmits:
                    raise TransmissionAborted(attempts)
                rto = self.tcp.sample_rto()
                stall += rto
                yield sim.timeout(rto)

            yield sim.timeout(latency)
        finally:
            self.active_transfers -= 1
        return Delivery(src_node, dst_node, payload, depart, sim.now, attempts, stall)

    # -- diagnostics -----------------------------------------------------------------
    def resource_stats(self) -> dict[str, dict]:
        """Snapshot of every pipe's counters, keyed by resource name."""
        out = {}
        for res in (*self.nic_tx, *self.nic_rx, *self.fabric, *self.stack.values()):
            out[res.name] = res.stats.as_dict()
        return out
