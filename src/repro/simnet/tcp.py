"""TCP loss and retransmission-timeout behaviour.

Commodity clusters of the paper's era ran MPI over TCP on Fast Ethernet.
Under heavy contention, switch buffers overflow, segments are dropped and
the sender stalls for a *retransmission timeout* (RTO) -- 200 ms minimum on
the Linux 2.2 kernels Perseus ran.  The paper identifies these stalls as
the source of the extreme outliers in its measured distributions (Figures
3-4) and notes they matter because "the performance of most parallel
programs is strongly influenced by their slowest process".

We model loss at message granularity: each transmission attempt across the
network is dropped with a probability that ramps up with the backlog at the
bottleneck resource the message crosses (a proxy for buffer occupancy).
A dropped attempt costs one RTO (with jitter) before the retry.
"""

from __future__ import annotations

import numpy as np

from .rng import RngRegistry
from .topology import TcpModel

__all__ = ["TcpBehaviour", "TransmissionAborted"]


class TransmissionAborted(RuntimeError):
    """Raised when a message exceeds ``max_retransmits`` attempts.

    On a real network this would surface as a TCP connection reset and an
    MPI job abort; tests exercise it by forcing 100% loss.
    """

    def __init__(self, attempts: int):
        super().__init__(f"message dropped on all {attempts} attempts")
        self.attempts = attempts


class TcpBehaviour:
    """Stochastic loss/RTO decisions, fed by a dedicated RNG stream."""

    def __init__(self, model: TcpModel, rngs: RngRegistry):
        model.validate()
        self.model = model
        self._rng = rngs.stream("tcp.loss")

    def loss_probability(self, backlog: float) -> float:
        """Per-attempt drop probability given bottleneck *backlog* seconds.

        Zero below ``loss_backlog_threshold``, then a linear ramp over
        ``loss_backlog_scale`` up to ``loss_max_probability``.  The ramp
        shape is deliberately simple: the figures' qualitative features
        (no outliers unsaturated, a discrete outlier cluster near the RTO
        when saturated) only need loss to switch on with congestion.
        """
        m = self.model
        if m.loss_max_probability == 0.0:
            return 0.0
        excess = backlog - m.loss_backlog_threshold
        if excess <= 0.0:
            return 0.0
        frac = min(1.0, excess / m.loss_backlog_scale)
        return m.loss_max_probability * frac

    def attempt_is_lost(self, backlog: float) -> bool:
        """Sample the Bernoulli drop decision for one attempt."""
        p = self.loss_probability(backlog)
        if p <= 0.0:
            return False
        return bool(self._rng.random() < p)

    def sample_rto(self) -> float:
        """One retransmission-timeout stall, with uniform jitter."""
        m = self.model
        if m.rto_jitter == 0.0:
            return m.rto
        return float(m.rto + self._rng.uniform(0.0, m.rto_jitter))

    def expected_stall(self, backlog: float) -> float:
        """Mean RTO stall per message at the given backlog (analysis aid).

        Sums the geometric series of repeated losses, truncated at
        ``max_retransmits``.
        """
        p = self.loss_probability(backlog)
        if p <= 0.0:
            return 0.0
        mean_rto = self.model.rto + self.model.rto_jitter / 2.0
        # Expected number of stalls for a truncated geometric distribution.
        n = self.model.max_retransmits
        expected_losses = sum(p**k for k in range(1, n + 1))
        return mean_rto * expected_losses

    def describe(self) -> dict:
        """Parameter snapshot for reports and EXPERIMENTS.md."""
        m = self.model
        return {
            "rto_s": m.rto,
            "rto_jitter_s": m.rto_jitter,
            "loss_backlog_threshold_s": m.loss_backlog_threshold,
            "loss_backlog_scale_s": m.loss_backlog_scale,
            "loss_max_probability": m.loss_max_probability,
            "max_retransmits": m.max_retransmits,
        }
